"""Sensing-coverage metrics.

A WRSN's purpose is to observe its field; "the network still has alive
nodes" understates the damage when those nodes cluster in one corner.
Coverage is measured on a regular grid: a grid point is covered when at
least one *alive, base-station-connected* node senses it (Euclidean
sensing radius).  The attack's endgame — killing articulation nodes —
shows up here twice: dead sensors lose their own disks, and stranded
subtrees stop counting even though their nodes still live.
"""

from __future__ import annotations

import numpy as np

from repro.network.network import Network
from repro.network.spatial import SpatialGridIndex
from repro.utils.validation import check_positive

__all__ = ["coverage_ratio", "covered_fraction_of_points"]

DEFAULT_SENSING_RADIUS_M = 12.0
"""Default sensing radius: slightly over half the communication range."""

_POINT_BLOCK = 512
"""Grid points per evaluation block."""

_SENSOR_BLOCK = 2048
"""Sensors per evaluation block; peak scratch is POINT x SENSOR x 2
float64 (~16 MB), independent of the network size."""

_INDEX_THRESHOLD = 4096
"""Sensor count beyond which coverage routes through the spatial index
instead of blocked scans (each grid point then only tests the sensors in
its own grid neighbourhood)."""


def covered_fraction_of_points(
    points: np.ndarray,
    sensor_positions: np.ndarray,
    sensing_radius_m: float,
) -> float:
    """Fraction of ``points`` within the radius of any sensor.

    ``points`` is (m, 2), ``sensor_positions`` (n, 2); an empty sensor
    set covers nothing.

    The evaluation is blocked: the seed's single ``(m, n, 2)`` broadcast
    peaked at ~1 GB for a 25x25 grid over 10^5 sensors, where the blocked
    sweep holds at most a ``_POINT_BLOCK x _SENSOR_BLOCK`` slab at a time
    — bounded memory regardless of N.  Large sensor sets instead go
    through :class:`~repro.network.spatial.SpatialGridIndex`, which tests
    each point only against its grid neighbourhood.  Both paths apply the
    identical ``dx**2 + dy**2 <= r**2`` predicate per (point, sensor)
    pair, so the result is bitwise the same as the dense scan's.
    """
    check_positive("sensing_radius_m", sensing_radius_m)
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    sensor_positions = np.asarray(sensor_positions, dtype=float).reshape(-1, 2)
    if len(points) == 0:
        raise ValueError("no points to measure coverage over")
    if len(sensor_positions) == 0:
        return 0.0
    radius_sq = sensing_radius_m**2
    if len(sensor_positions) > _INDEX_THRESHOLD:
        index = SpatialGridIndex(sensor_positions, cell_size=sensing_radius_m)
        return float(index.any_within(points, radius_sq).mean())
    covered = np.zeros(len(points), dtype=bool)
    for p0 in range(0, len(points), _POINT_BLOCK):
        block = points[p0 : p0 + _POINT_BLOCK]
        block_covered = covered[p0 : p0 + _POINT_BLOCK]
        for s0 in range(0, len(sensor_positions), _SENSOR_BLOCK):
            todo = np.flatnonzero(~block_covered)
            if len(todo) == 0:
                break
            sensors = sensor_positions[s0 : s0 + _SENSOR_BLOCK]
            deltas = block[todo, None, :] - sensors[None, :, :]
            dist_sq = (deltas**2).sum(axis=-1)
            # Writing through the view IS the point: block_covered is a
            # window into `covered`, so the slab results land in place.
            block_covered[todo] |= (  # reprolint: ignore[RL-N003]
                dist_sq <= radius_sq
            ).any(axis=1)
    return float(covered.mean())


def coverage_ratio(
    network: Network,
    sensing_radius_m: float = DEFAULT_SENSING_RADIUS_M,
    grid_resolution: int = 25,
) -> float:
    """Field fraction observed by alive, connected sensors.

    Evaluated on a ``grid_resolution`` × ``grid_resolution`` lattice over
    the deployment field.  Only nodes that are alive *and* can deliver
    their readings to the base station count.
    """
    if grid_resolution < 2:
        raise ValueError(f"grid_resolution must be >= 2, got {grid_resolution}")
    deployment = network.deployment
    xs = np.linspace(0.0, deployment.width, grid_resolution)
    ys = np.linspace(0.0, deployment.height, grid_resolution)
    grid_x, grid_y = np.meshgrid(xs, ys)
    points = np.column_stack([grid_x.ravel(), grid_y.ravel()])

    tree = network.routing_tree
    active = [
        network.nodes[node_id].position
        for node_id in sorted(network.alive_ids())
        if tree.is_connected(node_id)
    ]
    sensors = np.array([(p.x, p.y) for p in active], dtype=float).reshape(-1, 2)
    return covered_fraction_of_points(points, sensors, sensing_radius_m)
