"""On-demand charging requests.

When a node's *believed* energy crosses its request threshold it sends a
charging request to the base station, which forwards it to the mobile
charger.  A request carries a deadline — the node's predicted death time —
because serving it later is pointless.  For the attacker, a key node's
request opens the time window inside which a spoofed visit is
indistinguishable from legitimate service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.node import SensorNode
from repro.utils.validation import check_finite, check_non_negative

__all__ = ["ChargingRequest", "predict_request"]


@dataclass(frozen=True, order=True)
class ChargingRequest:
    """A node's plea for energy.

    Attributes
    ----------
    time:
        When the request was (or will be) issued.
    node_id:
        The requesting node.
    deadline:
        Predicted death time of the node at its draw when requesting;
        service completing after this is futile.
    energy_needed_j:
        Energy required to refill the battery at request time.
    """

    time: float
    node_id: int
    deadline: float
    energy_needed_j: float

    def __post_init__(self) -> None:
        check_finite("time", self.time)
        check_finite("deadline", self.deadline)
        check_non_negative("energy_needed_j", self.energy_needed_j)
        if self.deadline < self.time:
            raise ValueError(
                f"request deadline {self.deadline} precedes issue time {self.time}"
            )

    @property
    def window_width(self) -> float:
        """Seconds between the request and the node's predicted death."""
        return self.deadline - self.time


def predict_request(node: SensorNode) -> ChargingRequest | None:
    """The next charging request this node will issue at its current draw.

    Returns ``None`` for dead nodes and for nodes that will never cross
    their threshold (zero draw).  Assumes the draw stays constant — the
    caller must re-predict after routing changes.
    """
    if not node.alive:
        return None
    request_time = node.predicted_request_time()
    if request_time == float("inf"):
        return None

    # Energy state at the moment of the request.
    dt = request_time - node.clock
    true_energy_at_request = node.energy_j - node.consumption_w * dt
    if true_energy_at_request <= 0.0:
        # The node's belief lags reality so badly it will die before it
        # even asks; its "request" would never be sent.
        return None
    death_time = request_time + true_energy_at_request / max(
        node.consumption_w, 1e-300
    )
    believed_at_request = max(
        node.believed_energy_j - node.consumption_w * dt, 0.0
    )
    needed = node.battery_capacity_j - believed_at_request
    return ChargingRequest(
        time=request_time,
        node_id=node.node_id,
        deadline=death_time,
        energy_needed_j=needed,
    )
