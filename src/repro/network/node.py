"""The sensor node: battery, duty cycle, and (spoofable) energy belief.

A node's true battery drains piecewise-linearly at its current consumption
rate, which the network recomputes whenever the routing tree changes.  The
node additionally maintains a *believed* energy level — its own estimate,
driven by coulomb counting plus the charging-presence indicator.  Genuine
charging raises both true and believed energy.  A spoofed charging session
raises only the believed energy: the pilot detector saw RF for the full
service duration, so the node credits itself the expected harvest, while
the rectenna delivered nothing.  This divergence between belief and truth
is what lets a spoofed node die "in vain" without ever re-requesting a
charge.

Storage-wise a node is a thin *view* onto one slot of an
:class:`repro.network.energy_ledger.EnergyLedger`: a network-owned node
shares the network's ledger (so the simulation loop can advance every
battery in one vectorized pass), while a standalone node owns a private
single-slot ledger.  Either way the scalar API below is unchanged.
"""

from __future__ import annotations

import math
from enum import Enum

from repro.network.energy_ledger import EnergyLedger
from repro.utils.geometry import Point
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = ["NodeState", "SensorNode"]


class NodeState(Enum):
    """Liveness of a sensor node."""

    ALIVE = "alive"
    DEAD = "dead"


class SensorNode:
    """A wireless rechargeable sensor node.

    Parameters
    ----------
    node_id:
        Stable integer identifier, unique within a network.
    position:
        Location in the field, metres.
    battery_capacity_j:
        Full battery energy in joules.  Default 10.8 kJ (the 2×AA-class
        battery standard in this literature).
    initial_energy_frac:
        Starting charge as a fraction of capacity.
    request_threshold_frac:
        The node issues a charging request when its *believed* energy falls
        to this fraction of capacity.
    generation_rate_bps:
        The node's own data-generation rate.
    ledger, slot:
        Shared energy store and this node's slot in it.  Omitted (the
        standalone case), the node allocates a private single-slot ledger.
    """

    def __init__(
        self,
        node_id: int,
        position: Point,
        battery_capacity_j: float = 10_800.0,
        initial_energy_frac: float = 1.0,
        request_threshold_frac: float = 0.2,
        generation_rate_bps: float = 3_000.0,
        *,
        ledger: EnergyLedger | None = None,
        slot: int = 0,
    ) -> None:
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self.node_id = int(node_id)
        self.position = position
        self.battery_capacity_j = check_positive(
            "battery_capacity_j", battery_capacity_j
        )
        initial_energy_frac = check_probability(
            "initial_energy_frac", initial_energy_frac
        )
        self.request_threshold_frac = check_probability(
            "request_threshold_frac", request_threshold_frac
        )
        self.generation_rate_bps = check_non_negative(
            "generation_rate_bps", generation_rate_bps
        )

        if ledger is None:
            ledger = EnergyLedger(1)
            slot = 0
        self._ledger = ledger
        self._slot = slot
        ledger.init_slot(slot, self.battery_capacity_j, initial_energy_frac)

        # Key-node annotations, filled in by repro.network.keynodes.
        self.is_key = False
        self.weight = 0.0

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def energy_j(self) -> float:
        """True residual battery energy at the node's local clock."""
        return float(self._ledger.energy_j[self._slot])

    @property
    def believed_energy_j(self) -> float:
        """The node's own energy estimate at its local clock."""
        return float(self._ledger.believed_j[self._slot])

    @property
    def consumption_w(self) -> float:
        """Current steady-state power draw."""
        return float(self._ledger.consumption_w[self._slot])

    @property
    def clock(self) -> float:
        """Simulation time the node's energy state is valid at."""
        return float(self._ledger.clock[self._slot])

    @property
    def alive(self) -> bool:
        """Whether the node is still operating."""
        return bool(self._ledger.alive[self._slot])

    @property
    def state(self) -> NodeState:
        """Liveness of the node, as an enum."""
        return NodeState.ALIVE if self.alive else NodeState.DEAD

    @property
    def death_time(self) -> float | None:
        """Exact depletion instant, or ``None`` while alive."""
        value = float(self._ledger.death_time[self._slot])
        return None if math.isnan(value) else value

    @property
    def request_threshold_j(self) -> float:
        """Believed energy level at which the node requests charging."""
        return self.battery_capacity_j * self.request_threshold_frac

    # ------------------------------------------------------------------
    # Consumption control (driven by the network's routing recomputation)
    # ------------------------------------------------------------------
    def set_consumption(self, power_w: float) -> None:
        """Set the node's steady-state power draw (>= 0)."""
        self._ledger.consumption_w[self._slot] = check_non_negative(
            "power_w", power_w
        )

    # ------------------------------------------------------------------
    # Time evolution
    # ------------------------------------------------------------------
    def advance_to(self, time: float) -> None:
        """Drain the battery up to the given simulation time.

        Time never flows backwards for a node; the caller (the simulation
        engine) must advance nodes monotonically.  If the battery empties
        en route, the node dies at the exact depletion instant.
        """
        if time < self.clock - 1e-9:
            raise ValueError(
                f"node {self.node_id}: cannot advance to {time} "
                f"(clock already at {self.clock})"
            )
        self._ledger.advance_slot_to(self._slot, time)

    def predicted_death_time(self) -> float:
        """Time at which the battery will empty at the current draw.

        ``inf`` if the node draws no power.  Based on *true* energy.
        """
        if not self.alive:
            death = self.death_time
            return death if death is not None else self.clock
        consumption = self.consumption_w
        if consumption <= 0.0:
            return math.inf
        return self.clock + self.energy_j / consumption

    def predicted_request_time(self) -> float:
        """Time at which *believed* energy will cross the request threshold.

        Returns the current clock if the belief is already below threshold,
        ``inf`` if it never will (no draw).
        """
        if not self.alive:
            return math.inf
        deficit = self.believed_energy_j - self.request_threshold_j
        if deficit <= 0.0:
            return self.clock
        consumption = self.consumption_w
        if consumption <= 0.0:
            return math.inf
        return self.clock + deficit / consumption

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------
    def receive_charge(self, delivered_j: float, believed_j: float) -> None:
        """Apply a completed charging service.

        Parameters
        ----------
        delivered_j:
            Energy actually harvested (zero for a successful spoof).
        believed_j:
            Energy the node *credits itself* based on its charging-presence
            indicator and the service duration (full expected harvest for
            both genuine and spoofed services).

        Both are clamped to the battery capacity.  Dead nodes cannot be
        revived by charging.
        """
        delivered_j = check_non_negative("delivered_j", delivered_j)
        believed_j = check_non_negative("believed_j", believed_j)
        self._ledger.charge_slot(self._slot, delivered_j, believed_j)

    def set_initial_energy(self, fraction: float) -> None:
        """Reset both true and believed energy to a fraction of capacity.

        For pre-run calibration only (e.g. bench batteries that do not
        start full); raises if the node has already evolved.
        """
        fraction = check_probability("fraction", fraction)
        if self.clock != 0.0:
            raise RuntimeError(
                "set_initial_energy is only valid before the simulation starts"
            )
        self._ledger.reset_slot_energy(self._slot, fraction)

    def belief_gap_j(self) -> float:
        """How much the node over-estimates its own energy (>= 0 under attack)."""
        return self.believed_energy_j - self.energy_j

    def __repr__(self) -> str:
        return (
            f"SensorNode(id={self.node_id}, pos=({self.position.x:.1f}, "
            f"{self.position.y:.1f}), energy={self.energy_j:.0f}J, "
            f"state={self.state.value})"
        )
