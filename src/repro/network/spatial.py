"""Uniform spatial grid index over 2-D positions.

Topology construction, coverage evaluation and candidate scoring all ask
the same two questions — "which nodes sit within range ``r`` of this
point?" and "which *pairs* of nodes sit within ``r`` of each other?" —
and the seed answered both with dense O(N²) scans (a full pairwise
distance matrix in :func:`~repro.network.topology.communication_graph`,
an ``(m, n, 2)`` broadcast in coverage).  Neither survives 10^5 nodes:
the pairwise matrix alone is 80 GB at N = 10^5.

:class:`SpatialGridIndex` buckets points into a uniform grid of
``cell_size``-sided cells.  Radius queries inspect only the O(1) cells
overlapping the query disk, and the all-pairs sweep joins each occupied
cell against its half-neighbourhood, so both costs scale with the number
of *candidates* (points per disk), not with N.  All bucket bookkeeping is
vectorized NumPy — there is no per-point Python loop anywhere on the
build or all-pairs paths.

Exactness: the grid only *pre-filters*; every candidate is confirmed
with the same float64 arithmetic the dense scans used (``dx**2 + dy**2``
then ``sqrt``), so results are bitwise identical to brute force — a
property the equivalence tests in ``tests/network/test_spatial.py`` and
``tests/properties/`` pin down.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SpatialGridIndex"]


def _ragged_arange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for each (s, c) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    # Position within the flat output minus the start of its own block,
    # shifted by the block's range start.
    flat = np.arange(total, dtype=np.int64)
    block_offset = np.repeat(ends - counts, counts)
    return flat - block_offset + np.repeat(starts, counts)


class SpatialGridIndex:
    """A uniform-grid bucket index over ``(n, 2)`` planar positions.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, 2)``; kept by reference as float64.
    cell_size:
        Grid cell side in the same unit as the coordinates.  The natural
        choice is the dominant query radius (communication range,
        sensing radius): radius-``cell_size`` queries then touch at most
        a 3x3 block of cells.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        check_positive("cell_size", cell_size)
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        self._points = pts
        self._cell = float(cell_size)
        n = len(pts)
        if n == 0:
            self._origin = np.zeros(2)
            self._max_cell = np.zeros(2, dtype=np.int64)
            self._stride = np.int64(1)
            self._order = np.zeros(0, dtype=np.int64)
            self._keys = np.zeros(0, dtype=np.int64)
            self._starts = np.zeros(0, dtype=np.int64)
            self._counts = np.zeros(0, dtype=np.int64)
            return
        self._origin = pts.min(axis=0)
        cells = np.floor((pts - self._origin) / self._cell).astype(np.int64)
        self._max_cell = cells.max(axis=0)
        # Composite key c_x * stride + c_y is collision-free for every
        # occupied cell because 0 <= c_y <= max_cy < stride.
        self._stride = self._max_cell[1] + np.int64(2)
        key = cells[:, 0] * self._stride + cells[:, 1]
        self._order = np.argsort(key, kind="stable")
        sorted_keys = key[self._order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        self._keys = uniq
        self._starts = starts.astype(np.int64)
        self._counts = np.diff(np.append(self._starts, n)).astype(np.int64)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """The indexed positions, shape ``(n, 2)``."""
        return self._points

    @property
    def cell_size(self) -> float:
        """Grid cell side, metres."""
        return self._cell

    @property
    def occupied_cells(self) -> int:
        """Number of grid cells holding at least one point."""
        return len(self._keys)

    # ------------------------------------------------------------------
    # Candidate gathering
    # ------------------------------------------------------------------
    def _block(self, key: np.int64) -> np.ndarray:
        """Original point indices bucketed under one cell key."""
        pos = np.searchsorted(self._keys, key)
        if pos >= len(self._keys) or self._keys[pos] != key:
            return np.zeros(0, dtype=np.int64)
        start = self._starts[pos]
        return self._order[start : start + self._counts[pos]]

    def _candidates(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of points in every cell overlapping the query disk."""
        if len(self._points) == 0:
            return np.zeros(0, dtype=np.int64)
        # Pad the window by a sliver so an ulp of rounding in the cell
        # arithmetic can never exclude a boundary point; candidates are
        # distance-filtered afterwards, so padding only costs time.
        reach = radius + self._cell * 1e-9
        lo = np.floor((np.array([x, y]) - self._origin - reach) / self._cell)
        hi = np.floor((np.array([x, y]) - self._origin + reach) / self._cell)
        # Clamp to occupied territory: cells outside it are empty anyway,
        # and clamping keeps composite keys collision-free.
        lo = np.maximum(lo, 0).astype(np.int64)
        hi = np.minimum(hi, self._max_cell).astype(np.int64)
        if np.any(hi < lo):
            return np.zeros(0, dtype=np.int64)
        blocks = [
            self._block(cx * self._stride + cy)
            for cx in range(int(lo[0]), int(hi[0]) + 1)
            for cy in range(int(lo[1]), int(hi[1]) + 1)
        ]
        return np.concatenate(blocks) if blocks else np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Indices of points with ``distance <= radius`` of ``(x, y)``.

        The comparison is on the square root (``hypot <= radius``),
        matching the communication-graph predicate bit for bit.  Returned
        indices are sorted ascending.
        """
        check_positive("radius", radius)
        cand = self._candidates(x, y, radius)
        if len(cand) == 0:
            return cand
        deltas = self._points[cand] - (x, y)
        dist = np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2)
        return np.sort(cand[dist <= radius])

    def any_within(self, queries: np.ndarray, radius_sq: float) -> np.ndarray:
        """Boolean mask: does any indexed point fall within each query disk?

        ``queries`` is ``(m, 2)``; ``radius_sq`` is the *squared* radius,
        compared as ``dx**2 + dy**2 <= radius_sq`` — exactly the coverage
        predicate, so the mask is bitwise identical to the dense scan.
        """
        qs = np.asarray(queries, dtype=float).reshape(-1, 2)
        out = np.zeros(len(qs), dtype=bool)
        if len(self._points) == 0:
            return out
        radius = float(np.sqrt(radius_sq))
        for i, (x, y) in enumerate(qs):
            cand = self._candidates(float(x), float(y), radius)
            if len(cand) == 0:
                continue
            deltas = self._points[cand] - (x, y)
            dist_sq = deltas[:, 0] ** 2 + deltas[:, 1] ** 2
            out[i] = bool(np.any(dist_sq <= radius_sq))
        return out

    def pairs_within(
        self, radius: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All unordered pairs ``(i, j)``, ``i < j``, with distance <= radius.

        Returns ``(i, j, dist)`` arrays sorted lexicographically by
        ``(i, j)``.  Distances are computed as ``sqrt(dx**2 + dy**2)`` in
        float64 and compared on the root — bitwise the same edges and
        edge lengths the dense pairwise matrix produced.
        """
        check_positive("radius", radius)
        n = len(self._points)
        empty = np.zeros(0, dtype=np.int64)
        if n < 2:
            return empty, empty, np.zeros(0)
        reach = int(np.ceil(radius / self._cell))
        # Half-neighbourhood: (0, 0) pairs within a cell, plus every
        # offset with dx > 0 or (dx == 0 and dy > 0) — each unordered
        # cell pair is visited exactly once.
        offsets = [(0, 0)] + [
            (dx, dy)
            for dx in range(0, reach + 1)
            for dy in range(-reach, reach + 1)
            if dx > 0 or (dx == 0 and dy > 0)
        ]
        a_parts: list[np.ndarray] = []
        b_parts: list[np.ndarray] = []
        for dx, dy in offsets:
            a_sorted, b_sorted = self._join_offset(dx, dy)
            if len(a_sorted) == 0:
                continue
            if dx == 0 and dy == 0:
                keep = a_sorted < b_sorted  # dedupe within-cell pairs
                a_sorted, b_sorted = a_sorted[keep], b_sorted[keep]
            a_parts.append(self._order[a_sorted])
            b_parts.append(self._order[b_sorted])
        if not a_parts:
            return empty, empty, np.zeros(0)
        a = np.concatenate(a_parts)
        b = np.concatenate(b_parts)
        i = np.minimum(a, b)
        j = np.maximum(a, b)
        deltas = self._points[i] - self._points[j]
        dist = np.sqrt(deltas[:, 0] ** 2 + deltas[:, 1] ** 2)
        keep = dist <= radius
        i, j, dist = i[keep], j[keep], dist[keep]
        order = np.lexsort((j, i))
        return i[order], j[order], dist[order]

    def _join_offset(self, dx: int, dy: int) -> tuple[np.ndarray, np.ndarray]:
        """Cross-join every occupied cell with its ``(dx, dy)`` neighbour.

        Returns parallel arrays of *sorted-order* positions (indices into
        ``self._order``), one entry per candidate pair.
        """
        empty = np.zeros(0, dtype=np.int64)
        if dx == 0 and dy == 0:
            # Explicit int64: np.arange defaults to the *platform* int,
            # and every other position array in the index is int64.
            valid = np.arange(len(self._keys), dtype=np.int64)
            b_pos = valid
        else:
            # Decompose keys so out-of-range neighbour coordinates are
            # dropped *before* re-keying — a raw key offset would alias
            # across grid columns whenever cy + dy overflows the stride.
            cx = self._keys // self._stride
            cy = self._keys % self._stride
            ncx = cx + np.int64(dx)
            ncy = cy + np.int64(dy)
            in_range = np.flatnonzero(
                (ncx <= self._max_cell[0])
                & (ncy >= 0)
                & (ncy <= self._max_cell[1])
            )
            neighbour = ncx[in_range] * self._stride + ncy[in_range]
            b_pos = np.searchsorted(self._keys, neighbour)
            found = (b_pos < len(self._keys)) & (
                self._keys[np.minimum(b_pos, len(self._keys) - 1)] == neighbour
            )
            valid = in_range[found]
            b_pos = b_pos[found]
        if len(valid) == 0:
            return empty, empty
        starts_a = self._starts[valid]
        counts_a = self._counts[valid]
        starts_b = self._starts[b_pos]
        counts_b = self._counts[b_pos]
        # Expand the ragged cross products: each element of block A pairs
        # with every element of block B.
        a_elems = _ragged_arange(starts_a, counts_a)
        per_elem_b = np.repeat(counts_b, counts_a)
        a_out = np.repeat(a_elems, per_elem_b)
        b_start_per_elem = np.repeat(starts_b, counts_a)
        b_out = _ragged_arange(b_start_per_elem, per_elem_b)
        return a_out, b_out
