"""repro — reproduction of "Are You Really Charging Me?" (ICDCS 2022).

A wireless rechargeable sensor network (WRSN) security library built
around the paper's Charging Spoofing Attack (CSA): a malicious mobile
charger that *appears* to charge its victims while destructively
superposing its antenna array's waves at their rectennas, exhausting the
network's key nodes without tripping the base station's detectors.

The package layers, bottom-up:

* :mod:`repro.em` — wave superposition, nonlinear rectenna, null steering.
* :mod:`repro.network` — the WRSN substrate: nodes, routing, traffic,
  key-node identification, charging requests.
* :mod:`repro.mc` — the mobile charger and benign scheduling policies.
* :mod:`repro.core` — the paper's contribution: the TIDE optimisation
  problem, the CSA approximation algorithm, exact solvers, and the
  performance guarantee.
* :mod:`repro.attack` / :mod:`repro.detection` — attacker controllers
  and base-station detectors.
* :mod:`repro.sim` — the discrete-event simulation tying it together.
* :mod:`repro.testbed` — the bench-scale validation campaign.
* :mod:`repro.analysis` — metrics, aggregation and table rendering.

Quickstart::

    from repro import ScenarioConfig, WrsnSimulation, CsaAttacker
    from repro.detection import default_detector_suite

    cfg = ScenarioConfig(node_count=100, key_count=10)
    sim = WrsnSimulation(
        cfg.build_network(seed=1),
        cfg.build_charger(),
        CsaAttacker(key_count=cfg.key_count),
        detectors=default_detector_suite(1),
        horizon_s=cfg.horizon_s,
    )
    result = sim.run()
    print(result.exhausted_key_ratio(), result.detected)
"""

from repro.attack import (
    BlatantAttacker,
    CsaAttacker,
    NoisyEstimator,
    PlannedAttacker,
    execute_spoof,
    exposure_cap_for_risk,
)
from repro.core import (
    CsaPlanner,
    EdfPlanner,
    GreedyWeightPlanner,
    ModularUtility,
    NearestFirstPlanner,
    RandomPlanner,
    StealthPolicy,
    TideInstance,
    TidePlan,
    TideTarget,
    TspPlanner,
    derive_targets,
    evaluate_route,
    solve_tide_exact,
)
from repro.detection import default_detector_suite
from repro.detection import ChargeVerificationDefense
from repro.em import ChargerArray, Rectenna, superposition_sweep
from repro.mc import MobileCharger, default_charging_hardware
from repro.network import Network, build_network
from repro.sim import (
    BenignController,
    ScenarioConfig,
    SimulationResult,
    WrsnSimulation,
)
from repro.testbed import run_testbed

__version__ = "1.0.0"

__all__ = [
    "BenignController",
    "BlatantAttacker",
    "ChargeVerificationDefense",
    "ChargerArray",
    "CsaAttacker",
    "CsaPlanner",
    "EdfPlanner",
    "GreedyWeightPlanner",
    "MobileCharger",
    "ModularUtility",
    "NearestFirstPlanner",
    "Network",
    "NoisyEstimator",
    "PlannedAttacker",
    "RandomPlanner",
    "Rectenna",
    "ScenarioConfig",
    "SimulationResult",
    "StealthPolicy",
    "TideInstance",
    "TidePlan",
    "TideTarget",
    "TspPlanner",
    "WrsnSimulation",
    "build_network",
    "default_charging_hardware",
    "default_detector_suite",
    "derive_targets",
    "evaluate_route",
    "execute_spoof",
    "exposure_cap_for_risk",
    "run_testbed",
    "solve_tide_exact",
    "superposition_sweep",
    "__version__",
]
