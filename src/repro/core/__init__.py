"""The paper's primary contribution: TIDE and the CSA algorithm.

* :mod:`repro.core.tide` — the charging uTility optImization problem with
  key noDe timE window constraints: instances, routes, feasibility and
  evaluation.
* :mod:`repro.core.windows` — deriving each key node's stealthy service
  window from network state and the detection environment.
* :mod:`repro.core.utility` — monotone (sub)modular attack utilities.
* :mod:`repro.core.csa` — the CSA approximation algorithm.
* :mod:`repro.core.optimal` — exact solvers for small instances.
* :mod:`repro.core.baselines` — attack-planning baselines.
* :mod:`repro.core.bounds` — the bounded performance guarantee.
"""

from repro.core.baselines import (
    EdfPlanner,
    GreedyWeightPlanner,
    NearestFirstPlanner,
    Planner,
    RandomPlanner,
    TspPlanner,
)
from repro.core.bounds import (
    GREEDY_GUARANTEE,
    GuaranteeCertificate,
    check_guarantee,
    empirical_ratio,
)
from repro.core.csa import CsaPlanner
from repro.core.improvement import improve_plan, improve_route
from repro.core.optimal import solve_tide_bruteforce, solve_tide_exact
from repro.core.tide import (
    RouteEvaluation,
    TideInstance,
    TidePlan,
    TideTarget,
    VisitSchedule,
    evaluate_route,
    latest_start_schedule,
)
from repro.core.utility import CoverageUtility, ModularUtility, Utility
from repro.core.windows import StealthPolicy, derive_targets

__all__ = [
    "CoverageUtility",
    "CsaPlanner",
    "EdfPlanner",
    "GREEDY_GUARANTEE",
    "GreedyWeightPlanner",
    "GuaranteeCertificate",
    "ModularUtility",
    "NearestFirstPlanner",
    "Planner",
    "RandomPlanner",
    "RouteEvaluation",
    "StealthPolicy",
    "TideInstance",
    "TidePlan",
    "TideTarget",
    "TspPlanner",
    "Utility",
    "VisitSchedule",
    "check_guarantee",
    "derive_targets",
    "empirical_ratio",
    "evaluate_route",
    "improve_plan",
    "improve_route",
    "latest_start_schedule",
    "solve_tide_bruteforce",
    "solve_tide_exact",
]
