"""The TIDE problem: charging uTility optImization with key noDe timE
window constraints.

An instance fixes the attacker's situation at planning time: a set of key
node *targets*, each with a positive weight (its criticality), a required
spoof-service duration (the time a genuine charge of the same deficit
would take — parking for less would betray the spoof), an emission energy
cost, and a **time window on the service start**.  The window encodes
stealth: starting earlier than ``window_start`` would mean visiting a node
that has not requested charging (or leaving the victim exposed to energy
audits for too long); starting later than ``window_end`` would let the
victim die during or suspiciously soon after the visit.

A solution is an open route: an ordered subset of targets.  The charger
departs its start position at the start time, drives at constant speed,
may wait (free) for a window to open, must begin each service inside the
target's window, and must fund all travel and emission from its energy
budget.  The objective is the total weight of the targets served.

TIDE contains the Orienteering Problem with Time Windows (set all service
durations and energies so only travel binds), hence is NP-hard, which is
why the paper resorts to the CSA approximation algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.geometry import Point
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "RouteEvaluation",
    "TideInstance",
    "TidePlan",
    "TideTarget",
    "VisitSchedule",
    "evaluate_route",
    "latest_start_schedule",
]

_TIME_EPS = 1e-6
"""Slack tolerated on window comparisons, absorbing float accumulation."""


@dataclass(frozen=True)
class TideTarget:
    """One key node the attacker may choose to exhaust.

    Attributes
    ----------
    node_id:
        The victim's network identifier.
    weight:
        Criticality weight — the utility of exhausting this node.
    position:
        Where the charger must park to serve it.
    window_start, window_end:
        Earliest and latest *service start* times keeping the visit
        stealthy.  ``window_start <= window_end``.
    service_duration:
        Seconds the spoof must radiate to mimic a genuine recharge.
    service_energy_j:
        Emission energy of the service.
    request_time, death_time:
        Underlying network predictions the window was derived from
        (diagnostics; not used by feasibility).
    """

    node_id: int
    weight: float
    position: Point
    window_start: float
    window_end: float
    service_duration: float
    service_energy_j: float
    request_time: float = 0.0
    death_time: float = float("inf")

    def __post_init__(self) -> None:
        check_positive("weight", self.weight)
        check_non_negative("service_duration", self.service_duration)
        check_non_negative("service_energy_j", self.service_energy_j)
        if self.window_end < self.window_start:
            raise ValueError(
                f"target {self.node_id}: window_end {self.window_end} precedes "
                f"window_start {self.window_start}"
            )

    @property
    def window_width(self) -> float:
        """Seconds of slack on the service start."""
        return self.window_end - self.window_start


@dataclass(frozen=True)
class TideInstance:
    """A complete TIDE planning problem.

    Attributes
    ----------
    targets:
        Candidate key nodes.  Node ids must be unique.
    start_position, start_time:
        Charger state at planning time.
    energy_budget_j:
        Energy available for travel plus emission.
    speed_m_s, travel_cost_j_per_m:
        Charger locomotion parameters.
    """

    targets: tuple[TideTarget, ...]
    start_position: Point
    start_time: float
    energy_budget_j: float
    speed_m_s: float = 5.0
    travel_cost_j_per_m: float = 50.0

    def __post_init__(self) -> None:
        check_non_negative("energy_budget_j", self.energy_budget_j)
        check_positive("speed_m_s", self.speed_m_s)
        check_non_negative("travel_cost_j_per_m", self.travel_cost_j_per_m)
        by_id = {t.node_id: t for t in self.targets}
        if len(by_id) != len(self.targets):
            raise ValueError("target node ids must be unique")
        # Frozen dataclass: install the lookup index via object.__setattr__.
        object.__setattr__(self, "_by_id", by_id)

    def target(self, node_id: int) -> TideTarget:
        """The target with the given node id."""
        try:
            return self._by_id[node_id]  # type: ignore[attr-defined]
        except KeyError:
            raise KeyError(f"no target with node id {node_id}") from None

    def target_ids(self) -> list[int]:
        """All candidate node ids, in declaration order."""
        return [t.node_id for t in self.targets]

    def total_weight(self) -> float:
        """Utility upper bound: the weight of serving everything."""
        return sum(t.weight for t in self.targets)


@dataclass(frozen=True)
class VisitSchedule:
    """Timing of one visit within an evaluated route."""

    node_id: int
    arrival: float
    service_start: float
    departure: float

    @property
    def waiting(self) -> float:
        """Idle seconds between arrival and the window opening."""
        return self.service_start - self.arrival


@dataclass(frozen=True)
class RouteEvaluation:
    """Feasibility, schedule and cost of a candidate route.

    ``utility`` is the modular (weight-sum) utility; planners optimising a
    different utility object recompute value from ``served_ids``.
    """

    feasible: bool
    visits: tuple[VisitSchedule, ...]
    utility: float
    energy_j: float
    finish_time: float
    infeasible_reason: str | None = None

    def served_ids(self) -> frozenset[int]:
        """Node ids served by this route (empty when infeasible)."""
        if not self.feasible:
            return frozenset()
        return frozenset(v.node_id for v in self.visits)


def evaluate_route(
    instance: TideInstance, route: Sequence[int]
) -> RouteEvaluation:
    """Schedule a route and check every TIDE constraint.

    The charger departs ``start_position`` at ``start_time``, drives
    between consecutive targets, waits (free of charge) when early, and
    must start each service within its target's window.  Returns an
    infeasible evaluation — with a human-readable reason — at the first
    violated constraint.

    Duplicated node ids in the route are rejected: spoofing a node twice
    is meaningless (it is dead or fully "charged" after the first visit).
    """
    if len(set(route)) != len(route):
        return RouteEvaluation(
            feasible=False,
            visits=(),
            utility=0.0,
            energy_j=0.0,
            finish_time=instance.start_time,
            infeasible_reason="route visits a node more than once",
        )

    position = instance.start_position
    clock = instance.start_time
    energy = 0.0
    utility = 0.0
    visits: list[VisitSchedule] = []

    for node_id in route:
        target = instance.target(node_id)
        leg = position.distance_to(target.position)
        arrival = clock + leg / instance.speed_m_s
        energy += leg * instance.travel_cost_j_per_m
        service_start = max(arrival, target.window_start)
        if service_start > target.window_end + _TIME_EPS:
            return RouteEvaluation(
                feasible=False,
                visits=tuple(visits),
                utility=0.0,
                energy_j=energy,
                finish_time=arrival,
                infeasible_reason=(
                    f"node {node_id}: arrival {arrival:.0f}s misses window "
                    f"[{target.window_start:.0f}, {target.window_end:.0f}]"
                ),
            )
        departure = service_start + target.service_duration
        energy += target.service_energy_j
        if energy > instance.energy_budget_j + _TIME_EPS:
            return RouteEvaluation(
                feasible=False,
                visits=tuple(visits),
                utility=0.0,
                energy_j=energy,
                finish_time=departure,
                infeasible_reason=(
                    f"node {node_id}: cumulative energy {energy:.0f} J exceeds "
                    f"budget {instance.energy_budget_j:.0f} J"
                ),
            )
        visits.append(
            VisitSchedule(
                node_id=node_id,
                arrival=arrival,
                service_start=service_start,
                departure=departure,
            )
        )
        utility += target.weight
        position = target.position
        clock = departure

    return RouteEvaluation(
        feasible=True,
        visits=tuple(visits),
        utility=utility,
        energy_j=energy,
        finish_time=clock,
    )


def latest_start_schedule(
    instance: TideInstance, route: Sequence[int]
) -> list[float]:
    """Latest feasible service-start time for each visit of a feasible route.

    A feasible route evaluated by :func:`evaluate_route` serves every
    target as *early* as possible.  For the attacker, early is bad: the
    longer a spoofed victim lingers alive, the longer the defender can
    spot-audit it.  This backward recursion pushes every service as late
    as its own window and the downstream visits allow::

        s_last = window_end_last
        s_k    = min(window_end_k, s_{k+1} - travel(k, k+1) - duration_k)

    The returned starts are pointwise >= the eager schedule's, keep the
    exact same visiting order and energy cost, and remain feasible.

    Raises ``ValueError`` if the route is not feasible to begin with.
    """
    evaluation = evaluate_route(instance, route)
    if not evaluation.feasible:
        raise ValueError(
            f"latest_start_schedule needs a feasible route: "
            f"{evaluation.infeasible_reason}"
        )
    if not route:
        return []
    targets = [instance.target(node_id) for node_id in route]
    latest = [0.0] * len(route)
    latest[-1] = targets[-1].window_end
    for k in range(len(route) - 2, -1, -1):
        leg = targets[k].position.distance_to(targets[k + 1].position)
        slack_limit = (
            latest[k + 1]
            - leg / instance.speed_m_s
            - targets[k].service_duration
        )
        latest[k] = min(targets[k].window_end, slack_limit)
    # Never earlier than the eager schedule (which is feasible), so the
    # result is feasible too.
    eager = [v.service_start for v in evaluation.visits]
    return [max(l, e) for l, e in zip(latest, eager)]


@dataclass(frozen=True)
class TidePlan:
    """A planner's answer: the chosen route and its evaluation."""

    route: tuple[int, ...]
    evaluation: RouteEvaluation
    planner_name: str

    def __post_init__(self) -> None:
        if not self.evaluation.feasible and self.route:
            raise ValueError("a TidePlan must wrap a feasible evaluation")

    @property
    def utility(self) -> float:
        """Modular utility of the plan."""
        return self.evaluation.utility

    @property
    def served(self) -> frozenset[int]:
        """Node ids the plan exhausts."""
        return self.evaluation.served_ids()
