"""Deriving stealthy service windows from network state.

For a key node ``i`` with predicted charging-request time ``r_i`` and
predicted death time ``d_i``, a spoofed service of duration ``tau_i`` that
starts at ``s`` is stealthy only if all three hold:

1. **Legitimacy** — ``s >= r_i``: the node must have asked for a charge,
   otherwise the visit itself is anomalous (the benign scheduler only
   dispatches the charger to requesters).
2. **Grace** — ``s + tau_i <= d_i - grace``: the victim must not die
   during, or within the defender's death-after-charge grace period of,
   the service; a "freshly charged" node dropping dead is the loudest
   possible alarm.
3. **Exposure** — ``d_i - (s + tau_i) <= exposure_cap``: between the end
   of the fake charge and the victim's death, the base station may spot-
   audit the node's true voltage and unmask the spoof; the attacker caps
   this exposure.

Constraints 2 and 3 pull in opposite directions, pinning the service into
a genuine two-sided window::

    s in [ max(r_i, d_i - tau_i - exposure_cap),  d_i - tau_i - grace ]

The window is empty when ``exposure_cap < grace`` or when the node's
remaining life is too short to fit the service plus the grace period — in
which case the node simply cannot be exhausted stealthily and is dropped
from the instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tide import TideTarget
from repro.mc.charger import ChargingHardware
from repro.network.network import Network
from repro.network.requests import predict_request
from repro.utils.validation import check_non_negative

__all__ = ["StealthPolicy", "derive_targets"]


@dataclass(frozen=True)
class StealthPolicy:
    """The attacker's stealth requirements.

    Parameters
    ----------
    grace_period_s:
        Minimum seconds between the end of a (fake) charge and the
        victim's death.  Default 3 hours — strictly above the defender's
        default 2-hour death-after-charge window, because landing exactly
        on the detector's boundary is detection, not stealth.
    exposure_cap_s:
        Maximum seconds the victim may linger, spoofed but alive, exposed
        to voltage spot-audits.  Default 6 hours (size it with
        :func:`repro.attack.stealth.exposure_cap_for_risk` for a specific
        audit intensity).  ``math.inf`` disables the exposure constraint
        (an audit-blind attacker).
    """

    grace_period_s: float = 10_800.0
    exposure_cap_s: float = 21_600.0

    def __post_init__(self) -> None:
        check_non_negative("grace_period_s", self.grace_period_s)
        if not math.isinf(self.exposure_cap_s):
            check_non_negative("exposure_cap_s", self.exposure_cap_s)
        elif self.exposure_cap_s < 0:
            raise ValueError("exposure_cap_s must be >= 0")
        if self.exposure_cap_s < self.grace_period_s:
            raise ValueError(
                "exposure_cap_s must be >= grace_period_s, or every window "
                f"is empty (got cap {self.exposure_cap_s} < grace "
                f"{self.grace_period_s})"
            )

    @classmethod
    def audit_blind(cls, grace_period_s: float = 10_800.0) -> "StealthPolicy":
        """A policy ignoring voltage audits (exposure unconstrained)."""
        return cls(grace_period_s=grace_period_s, exposure_cap_s=math.inf)

    @classmethod
    def none(cls) -> "StealthPolicy":
        """No stealth at all: the only constraint is physics.

        The service must still start after the request (before it, the
        node has no deficit worth spoofing) and finish before death.
        """
        return cls(grace_period_s=0.0, exposure_cap_s=math.inf)


def derive_targets(
    network: Network,
    hardware: ChargingHardware,
    policy: StealthPolicy,
    now: float,
) -> list[TideTarget]:
    """Stealthy TIDE targets for the network's current key nodes.

    For each annotated key node, predicts its request and death times at
    the current draw, sizes the spoof service to the deficit a genuine
    charge would cover, and intersects the three stealth constraints into
    a service-start window.  Nodes whose window is empty or already past
    are omitted — they cannot be exhausted stealthily from ``now``.

    Returns targets ordered by ``window_end`` (most urgent first), a
    convenient default for planners and humans alike.
    """
    targets: list[TideTarget] = []
    for info in network.key_nodes:
        node = network.nodes[info.node_id]
        if not node.alive:
            continue
        request = predict_request(node)
        if request is None:
            continue
        duration = hardware.service_duration_for(request.energy_needed_j)
        service_energy = hardware.emission_w * duration

        death = request.deadline
        latest = death - duration - policy.grace_period_s
        if math.isinf(policy.exposure_cap_s):
            earliest = request.time
        else:
            earliest = max(request.time, death - duration - policy.exposure_cap_s)
        earliest = max(earliest, now)
        if latest < earliest:
            continue
        targets.append(
            TideTarget(
                node_id=info.node_id,
                weight=info.weight,
                position=node.position,
                window_start=earliest,
                window_end=latest,
                service_duration=duration,
                service_energy_j=service_energy,
                request_time=request.time,
                death_time=death,
            )
        )
    targets.sort(key=lambda t: (t.window_end, t.node_id))
    return targets
