"""Attack utility functions.

The default TIDE utility is **modular**: each key node contributes its
criticality weight independently.  The paper's analysis only needs the
utility to be monotone and submodular (modular functions are both), so we
also provide a genuinely submodular *coverage* utility — key nodes grouped
by the network region they defend, with diminishing returns for piling on
one region — to exercise the algorithm's generality and to property-test
the submodularity-dependent parts of the guarantee.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from repro.utils.validation import check_positive

__all__ = ["CoverageUtility", "ModularUtility", "Utility"]


class Utility(ABC):
    """A monotone set function over key-node ids."""

    @abstractmethod
    def value(self, served: frozenset[int]) -> float:
        """Utility of exhausting exactly the given set of nodes."""

    def marginal(self, served: frozenset[int], extra: int) -> float:
        """Gain of adding ``extra`` to ``served``.

        Subclasses may override with a faster direct computation.
        """
        if extra in served:
            return 0.0
        return self.value(served | {extra}) - self.value(served)


class ModularUtility(Utility):
    """Additive utility: each node contributes its own weight.

    Parameters
    ----------
    weights:
        Node id → positive weight.
    """

    def __init__(self, weights: Mapping[int, float]) -> None:
        self._weights = {
            node_id: check_positive(f"weights[{node_id}]", w)
            for node_id, w in weights.items()
        }

    @classmethod
    def from_targets(cls, targets: Iterable) -> "ModularUtility":
        """Build from any iterable of objects with ``node_id`` and ``weight``."""
        return cls({t.node_id: t.weight for t in targets})

    def value(self, served: frozenset[int]) -> float:
        return sum(self._weights.get(node_id, 0.0) for node_id in served)

    def marginal(self, served: frozenset[int], extra: int) -> float:
        if extra in served:
            return 0.0
        return self._weights.get(extra, 0.0)

    def weight(self, node_id: int) -> float:
        """Weight of one node (0 for unknown ids)."""
        return self._weights.get(node_id, 0.0)


class CoverageUtility(Utility):
    """Submodular region-coverage utility.

    Key nodes are grouped by the region of the network whose connectivity
    they underpin.  Exhausting the first node of a region does most of the
    damage there; each additional node of the same region adds less::

        value(S) = sum_over_regions  w_region * (1 - decay ** |S ∩ region|)

    With ``decay`` in (0, 1) this is monotone and submodular (the classic
    saturating-coverage form).  Nodes absent from every region contribute
    nothing.

    Parameters
    ----------
    regions:
        Region name → the node ids defending it.  A node may appear in
        multiple regions.
    region_weights:
        Region name → positive weight.
    decay:
        Residual damage fraction left after each additional node;
        default 0.5 (the second node of a region adds half as much).
    """

    def __init__(
        self,
        regions: Mapping[str, frozenset[int]],
        region_weights: Mapping[str, float],
        decay: float = 0.5,
    ) -> None:
        if set(regions) != set(region_weights):
            raise ValueError("regions and region_weights must share keys")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self._regions = {name: frozenset(members) for name, members in regions.items()}
        self._weights = {
            name: check_positive(f"region_weights[{name}]", w)
            for name, w in region_weights.items()
        }
        self._decay = decay

    def value(self, served: frozenset[int]) -> float:
        total = 0.0
        for name, members in self._regions.items():
            hit = len(served & members)
            if hit:
                total += self._weights[name] * (1.0 - self._decay**hit)
        return total
