"""The CSA approximation algorithm for TIDE.

TIDE is NP-hard (it contains orienteering with time windows), so the
paper solves it approximately.  CSA is a **cost-benefit greedy insertion**
with a best-single-target safeguard:

1. Start from the empty route.
2. In every round, try every unrouted target in every insertion position;
   among the insertions that keep the route feasible (windows, budget),
   commit the one with the highest *marginal utility per joule of
   incremental cost*.
3. Stop when no feasible insertion remains.
4. Separately evaluate each single-target route and return whichever of
   (greedy route, best single) has the higher utility.

Step 4 is not cosmetic: it is what turns a cost-benefit greedy into an
algorithm with a **bounded performance guarantee**.  A greedy ratio rule
can be lured into many cheap low-value targets while one expensive target
carries most of the optimum; taking the max with the best single target
caps that loss, yielding the classic ``(1 - 1/e) / 2`` factor for
monotone submodular utility under a budget (Khuller-Moss-Naor style
analysis, adapted to routes as in the paper).  The bound is checked
empirically against the exact solver in ``benchmarks/bench_exp08``.

The utility defaults to the modular weight sum but any monotone
submodular :class:`~repro.core.utility.Utility` may be supplied.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.tide import (
    _TIME_EPS,
    RouteEvaluation,
    TideInstance,
    TidePlan,
    evaluate_route,
)
from repro.core.utility import ModularUtility, Utility

__all__ = ["CsaPlanner"]


class CsaPlanner:
    """Cost-benefit greedy insertion with a best-single safeguard.

    Parameters
    ----------
    utility:
        Monotone submodular utility over node ids; defaults to the modular
        utility formed from the targets' weights.
    min_gain:
        Marginal gains at or below this are treated as zero and never
        inserted (guards against useless inserts under saturating
        utilities).
    cost_benefit:
        When True (the default, and the paper's algorithm), insertions
        are ranked by marginal gain *per joule*; when False, by raw gain
        — the ablation ABL-03 isolates what the denominator buys.
    improve:
        When True, polish the greedy result with window-aware local
        search (:mod:`repro.core.improvement`) — the "CSA+ls" variant of
        ablation ABL-04.  Off by default to keep planning cheap enough
        for on-line replanning.
    """

    name = "CSA"

    def __init__(
        self,
        utility: Utility | None = None,
        min_gain: float = 1e-12,
        cost_benefit: bool = True,
        improve: bool = False,
    ) -> None:
        self._utility = utility
        self._min_gain = min_gain
        self._cost_benefit = cost_benefit
        self._improve = improve
        if not cost_benefit:
            self.name = "CSA-gain-only"
        if improve:
            self.name = self.name + "+ls"

    def _resolve_utility(self, instance: TideInstance) -> Utility:
        if self._utility is not None:
            return self._utility
        return ModularUtility.from_targets(instance.targets)

    def plan(self, instance: TideInstance) -> TidePlan:
        """Solve the instance; always returns a plan (possibly empty)."""
        utility = self._resolve_utility(instance)
        greedy_route, greedy_eval = self._greedy(instance, utility)
        single_route, single_eval = self._best_single(instance, utility)

        greedy_value = utility.value(greedy_eval.served_ids())
        single_value = utility.value(single_eval.served_ids())
        if single_value > greedy_value:
            route, evaluation = single_route, single_eval
        else:
            route, evaluation = greedy_route, greedy_eval
        plan = TidePlan(
            route=tuple(route), evaluation=evaluation, planner_name=self.name
        )
        if self._improve:
            from repro.core.improvement import improve_plan

            improved = improve_plan(instance, plan, utility)
            plan = TidePlan(
                route=improved.route,
                evaluation=improved.evaluation,
                planner_name=self.name,
            )
        return plan

    # ------------------------------------------------------------------
    # Greedy insertion
    # ------------------------------------------------------------------
    #
    # Each round must consider every (candidate, position) pair.  Doing
    # that by re-evaluating the whole trial route from scratch costs
    # O(k) per pair — O(n^3) per round, O(n^4) overall — which is what
    # made planning superlinear in the exp09 runtime curve.  Instead the
    # round precomputes, from the *current* route's schedule:
    #
    #   prev_clock[p]  departure time of the visit before position p
    #                  (the start time for p == 0);
    #   latest[p]      latest service start of the current visit at p
    #                  that keeps the whole downstream suffix feasible,
    #                  by the same backward recursion as
    #                  :func:`~repro.core.tide.latest_start_schedule`
    #                  with the window epsilon folded in per step;
    #   removed[p]     length of the route leg an insertion at p splits.
    #
    # Inserting candidate u at position p then checks in O(1): u's own
    # window (prefix timing is unchanged), the displaced successor
    # against ``latest`` (which subsumes the entire suffix), and the
    # closed-form energy delta
    # ``(leg_in + leg_out - removed) * travel_cost + service_energy``
    # against the budget (energy only grows along a route, so the final
    # total binds iff every prefix does).  The scan vectorises over all
    # k + 1 positions per candidate.  Only the single committed
    # insertion per round pays a full :func:`evaluate_route`; should
    # float rounding ever make that evaluation disagree with the O(1)
    # screen (a boundary ulp), the pair is banned and the round rescans.
    def _greedy(
        self, instance: TideInstance, utility: Utility
    ) -> tuple[list[int], RouteEvaluation]:
        route: list[int] = []
        evaluation = evaluate_route(instance, route)
        remaining = set(instance.target_ids())
        speed = instance.speed_m_s
        travel_cost = instance.travel_cost_j_per_m
        budget = instance.energy_budget_j

        while remaining:
            served = evaluation.served_ids()
            candidates = [
                (node_id, gain)
                for node_id in sorted(remaining)
                for gain in (utility.marginal(served, node_id),)
                if gain > self._min_gain
            ]
            if not candidates:
                break

            k = len(route)
            targets = [instance.target(node_id) for node_id in route]
            prev_xy = np.empty((k + 1, 2), dtype=float)
            prev_clock = np.empty(k + 1, dtype=float)
            prev_xy[0] = (instance.start_position.x, instance.start_position.y)
            prev_clock[0] = instance.start_time
            for i, (target, visit) in enumerate(zip(targets, evaluation.visits)):
                prev_xy[i + 1] = (target.position.x, target.position.y)
                prev_clock[i + 1] = visit.departure
            if k:
                window_starts = np.array(
                    [t.window_start for t in targets], dtype=float
                )
                latest = np.empty(k, dtype=float)
                latest[k - 1] = targets[k - 1].window_end + _TIME_EPS
                for q in range(k - 2, -1, -1):
                    leg = targets[q].position.distance_to(targets[q + 1].position)
                    latest[q] = min(
                        targets[q].window_end + _TIME_EPS,
                        latest[q + 1]
                        - targets[q].service_duration
                        - leg / speed,
                    )
                removed = np.append(
                    np.hypot(
                        prev_xy[:-1, 0] - prev_xy[1:, 0],
                        prev_xy[:-1, 1] - prev_xy[1:, 1],
                    ),
                    0.0,
                )
            else:
                window_starts = latest = np.empty(0, dtype=float)
                removed = np.zeros(1, dtype=float)

            banned: set[tuple[int, int]] = set()
            committed = False
            while True:
                best: tuple[float, float, int, int] | None = None
                best_node = best_pos = -1
                for node_id, gain in candidates:
                    target = instance.target(node_id)
                    d_in = np.hypot(
                        prev_xy[:, 0] - target.position.x,
                        prev_xy[:, 1] - target.position.y,
                    )
                    start_u = np.maximum(
                        prev_clock + d_in / speed, target.window_start
                    )
                    ok = start_u <= target.window_end + _TIME_EPS
                    if k:
                        # The displaced successor's next-hop distance is
                        # the candidate's own inbound distance to it.
                        start_next = np.maximum(
                            start_u[:k]
                            + target.service_duration
                            + d_in[1:] / speed,
                            window_starts,
                        )
                        ok[:k] &= start_next <= latest
                        d_out = np.append(d_in[1:], 0.0)
                    else:
                        d_out = np.zeros(1, dtype=float)
                    delta_e = (
                        d_in + d_out - removed
                    ) * travel_cost + target.service_energy_j
                    ok &= evaluation.energy_j + delta_e <= budget + _TIME_EPS
                    if not ok.any():
                        continue
                    if self._cost_benefit:
                        # Service energy is charged even for a zero-length
                        # detour, so delta_e > 0 whenever the service
                        # costs anything; guard the free case anyway.
                        safe = np.where(delta_e > 0.0, delta_e, 1.0)
                        rank = np.where(delta_e > 0.0, gain / safe, np.inf)
                    else:
                        rank = np.full(k + 1, gain)
                    rank = np.where(ok, rank, -np.inf)
                    for banned_node, banned_pos in banned:
                        if banned_node == node_id:
                            rank[banned_pos] = -np.inf
                    # First-occurrence argmax = smallest position among
                    # ties, matching the (rank, gain, -pos) key order.
                    position = int(np.argmax(rank))
                    top = float(rank[position])
                    if top == -np.inf:
                        continue
                    key = (top, gain, -position, -node_id)
                    if best is None or key > best:
                        best = key
                        best_node, best_pos = node_id, position

                if best is None:
                    break
                trial = route[:best_pos] + [best_node] + route[best_pos:]
                trial_eval = evaluate_route(instance, trial)
                if trial_eval.feasible:
                    route, evaluation = trial, trial_eval
                    committed = True
                    break
                banned.add((best_node, best_pos))

            if not committed:
                break
            remaining = set(instance.target_ids()) - set(route)

        return route, evaluation

    # ------------------------------------------------------------------
    # Best single target
    # ------------------------------------------------------------------
    def _best_single(
        self, instance: TideInstance, utility: Utility
    ) -> tuple[list[int], RouteEvaluation]:
        best_route: list[int] = []
        best_eval = evaluate_route(instance, [])
        best_value = 0.0
        for node_id in sorted(instance.target_ids()):
            trial_eval = evaluate_route(instance, [node_id])
            if not trial_eval.feasible:
                continue
            value = utility.value(frozenset({node_id}))
            if value > best_value:
                best_value = value
                best_route = [node_id]
                best_eval = trial_eval
        return best_route, best_eval

    def plan_route(self, instance: TideInstance) -> Sequence[int]:
        """Convenience: just the route of :meth:`plan`."""
        return self.plan(instance).route
