"""The CSA approximation algorithm for TIDE.

TIDE is NP-hard (it contains orienteering with time windows), so the
paper solves it approximately.  CSA is a **cost-benefit greedy insertion**
with a best-single-target safeguard:

1. Start from the empty route.
2. In every round, try every unrouted target in every insertion position;
   among the insertions that keep the route feasible (windows, budget),
   commit the one with the highest *marginal utility per joule of
   incremental cost*.
3. Stop when no feasible insertion remains.
4. Separately evaluate each single-target route and return whichever of
   (greedy route, best single) has the higher utility.

Step 4 is not cosmetic: it is what turns a cost-benefit greedy into an
algorithm with a **bounded performance guarantee**.  A greedy ratio rule
can be lured into many cheap low-value targets while one expensive target
carries most of the optimum; taking the max with the best single target
caps that loss, yielding the classic ``(1 - 1/e) / 2`` factor for
monotone submodular utility under a budget (Khuller-Moss-Naor style
analysis, adapted to routes as in the paper).  The bound is checked
empirically against the exact solver in ``benchmarks/bench_exp08``.

The utility defaults to the modular weight sum but any monotone
submodular :class:`~repro.core.utility.Utility` may be supplied.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.tide import (
    RouteEvaluation,
    TideInstance,
    TidePlan,
    evaluate_route,
)
from repro.core.utility import ModularUtility, Utility

__all__ = ["CsaPlanner"]


class CsaPlanner:
    """Cost-benefit greedy insertion with a best-single safeguard.

    Parameters
    ----------
    utility:
        Monotone submodular utility over node ids; defaults to the modular
        utility formed from the targets' weights.
    min_gain:
        Marginal gains at or below this are treated as zero and never
        inserted (guards against useless inserts under saturating
        utilities).
    cost_benefit:
        When True (the default, and the paper's algorithm), insertions
        are ranked by marginal gain *per joule*; when False, by raw gain
        — the ablation ABL-03 isolates what the denominator buys.
    improve:
        When True, polish the greedy result with window-aware local
        search (:mod:`repro.core.improvement`) — the "CSA+ls" variant of
        ablation ABL-04.  Off by default to keep planning cheap enough
        for on-line replanning.
    """

    name = "CSA"

    def __init__(
        self,
        utility: Utility | None = None,
        min_gain: float = 1e-12,
        cost_benefit: bool = True,
        improve: bool = False,
    ) -> None:
        self._utility = utility
        self._min_gain = min_gain
        self._cost_benefit = cost_benefit
        self._improve = improve
        if not cost_benefit:
            self.name = "CSA-gain-only"
        if improve:
            self.name = self.name + "+ls"

    def _resolve_utility(self, instance: TideInstance) -> Utility:
        if self._utility is not None:
            return self._utility
        return ModularUtility.from_targets(instance.targets)

    def plan(self, instance: TideInstance) -> TidePlan:
        """Solve the instance; always returns a plan (possibly empty)."""
        utility = self._resolve_utility(instance)
        greedy_route, greedy_eval = self._greedy(instance, utility)
        single_route, single_eval = self._best_single(instance, utility)

        greedy_value = utility.value(greedy_eval.served_ids())
        single_value = utility.value(single_eval.served_ids())
        if single_value > greedy_value:
            route, evaluation = single_route, single_eval
        else:
            route, evaluation = greedy_route, greedy_eval
        plan = TidePlan(
            route=tuple(route), evaluation=evaluation, planner_name=self.name
        )
        if self._improve:
            from repro.core.improvement import improve_plan

            improved = improve_plan(instance, plan, utility)
            plan = TidePlan(
                route=improved.route,
                evaluation=improved.evaluation,
                planner_name=self.name,
            )
        return plan

    # ------------------------------------------------------------------
    # Greedy insertion
    # ------------------------------------------------------------------
    def _greedy(
        self, instance: TideInstance, utility: Utility
    ) -> tuple[list[int], RouteEvaluation]:
        route: list[int] = []
        evaluation = evaluate_route(instance, route)
        remaining = set(instance.target_ids())

        while remaining:
            served = evaluation.served_ids()
            best: tuple[float, float, int, int] | None = None  # ratio, gain, -pos, id
            best_candidate: tuple[list[int], RouteEvaluation] | None = None

            for node_id in sorted(remaining):
                gain = utility.marginal(served, node_id)
                if gain <= self._min_gain:
                    continue
                for position in range(len(route) + 1):
                    trial = route[:position] + [node_id] + route[position:]
                    trial_eval = evaluate_route(instance, trial)
                    if not trial_eval.feasible:
                        continue
                    extra_cost = trial_eval.energy_j - evaluation.energy_j
                    if self._cost_benefit:
                        # Service energy is charged even for a zero-length
                        # detour, so extra_cost > 0 whenever the service
                        # costs anything; guard the free case anyway.
                        rank = gain / extra_cost if extra_cost > 0.0 else float("inf")
                    else:
                        rank = gain
                    key = (rank, gain, -position, -node_id)
                    if best is None or key > best:
                        best = key
                        best_candidate = (trial, trial_eval)

            if best_candidate is None:
                break
            route, evaluation = best_candidate
            remaining = set(instance.target_ids()) - set(route)

        return route, evaluation

    # ------------------------------------------------------------------
    # Best single target
    # ------------------------------------------------------------------
    def _best_single(
        self, instance: TideInstance, utility: Utility
    ) -> tuple[list[int], RouteEvaluation]:
        best_route: list[int] = []
        best_eval = evaluate_route(instance, [])
        best_value = 0.0
        for node_id in sorted(instance.target_ids()):
            trial_eval = evaluate_route(instance, [node_id])
            if not trial_eval.feasible:
                continue
            value = utility.value(frozenset({node_id}))
            if value > best_value:
                best_value = value
                best_route = [node_id]
                best_eval = trial_eval
        return best_route, best_eval

    def plan_route(self, instance: TideInstance) -> Sequence[int]:
        """Convenience: just the route of :meth:`plan`."""
        return self.plan(instance).route
