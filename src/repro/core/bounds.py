"""The bounded performance guarantee of CSA.

The paper's theoretical analysis establishes that CSA's utility is within
a constant factor of optimal.  The reconstructed guarantee is the
classic one for cost-benefit greedy + best-single under a budget with a
monotone submodular objective (Khuller-Moss-Naor, adapted to routes)::

    U(CSA) >= (1 - 1/e) / 2 * U(OPT)   ~=   0.3161 * U(OPT)

This module exposes the constant, utilities to measure the empirical
ratio against the exact solver, and a certificate object the benchmark
(EXP-08) and tests use to assert that every observed instance respects
the bound — with the empirical ratios typically far above it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tide import TideInstance, TidePlan

__all__ = [
    "GREEDY_GUARANTEE",
    "GuaranteeCertificate",
    "check_guarantee",
    "empirical_ratio",
]

GREEDY_GUARANTEE = 0.5 * (1.0 - 1.0 / math.e)
"""The approximation factor of CSA: (1 - 1/e) / 2 ≈ 0.3161."""


def empirical_ratio(algorithm_utility: float, optimal_utility: float) -> float:
    """Observed approximation ratio ``alg / opt``.

    Defined as 1.0 when the optimum is zero (nothing to approximate).
    """
    if optimal_utility < 0.0 or algorithm_utility < 0.0:
        raise ValueError("utilities must be non-negative")
    if optimal_utility == 0.0:  # reprolint: disable=RL-P001 (exact-zero sentinel)
        return 1.0
    return algorithm_utility / optimal_utility


@dataclass(frozen=True)
class GuaranteeCertificate:
    """One instance's evidence for (or against) the guarantee.

    Attributes
    ----------
    ratio:
        Observed ``U(CSA) / U(OPT)``.
    holds:
        Whether the observed ratio meets :data:`GREEDY_GUARANTEE` (with a
        small numerical slack).
    csa_utility, optimal_utility:
        The raw utilities.
    n_targets:
        Instance size, for aggregation.
    """

    ratio: float
    holds: bool
    csa_utility: float
    optimal_utility: float
    n_targets: int


def check_guarantee(
    instance: TideInstance,
    csa_plan: TidePlan,
    optimal_plan: TidePlan,
    slack: float = 1e-9,
) -> GuaranteeCertificate:
    """Certify one instance against the theoretical bound.

    ``slack`` absorbs floating-point noise only; it must not paper over a
    genuine violation.
    """
    ratio = empirical_ratio(csa_plan.utility, optimal_plan.utility)
    # reprolint: disable-next=RL-P001 (exact-zero sentinel)
    holds = ratio + slack >= GREEDY_GUARANTEE or optimal_plan.utility == 0.0
    return GuaranteeCertificate(
        ratio=ratio,
        holds=holds,
        csa_utility=csa_plan.utility,
        optimal_utility=optimal_plan.utility,
        n_targets=len(instance.targets),
    )
