"""Attack-planning baselines CSA is compared against.

Every baseline honours the same feasibility rules as CSA (it still wants
to stay undetected); what varies is *how it chooses and orders targets*:

* :class:`RandomPlanner` — random order, keep what fits.
* :class:`GreedyWeightPlanner` — heaviest key nodes first, cost-blind.
* :class:`NearestFirstPlanner` — always drive to the closest serviceable
  target (the attack analogue of NJNP).
* :class:`EdfPlanner` — most urgent window first.
* :class:`TspPlanner` — shortest tour over all targets, serve what fits.

These are the conventional strawmen of the charging-scheduling
literature; the evaluation's claim is that CSA dominates all of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from repro.core.tide import (
    RouteEvaluation,
    TideInstance,
    TidePlan,
    TideTarget,
    evaluate_route,
)
from repro.mc.tour import nearest_neighbour_tour, two_opt
from repro.utils.rng import coerce_rng

__all__ = [
    "EdfPlanner",
    "GreedyWeightPlanner",
    "NearestFirstPlanner",
    "Planner",
    "RandomPlanner",
    "TspPlanner",
    "append_feasible",
]


class Planner(ABC):
    """Common interface of all TIDE planners (CSA included)."""

    name = "planner"

    @abstractmethod
    def plan(self, instance: TideInstance) -> TidePlan:
        """Produce a feasible plan for the instance."""


def append_feasible(
    instance: TideInstance, order: Iterable[int]
) -> tuple[list[int], RouteEvaluation]:
    """Walk ``order``, appending each target to the route end if feasible.

    The workhorse of the order-based baselines: it never reorders, only
    skips targets that would break a window or the budget.
    """
    route: list[int] = []
    evaluation = evaluate_route(instance, route)
    for node_id in order:
        trial = route + [node_id]
        trial_eval = evaluate_route(instance, trial)
        if trial_eval.feasible:
            route = trial
            evaluation = trial_eval
    return route, evaluation


class RandomPlanner(Planner):
    """Visit targets in a uniformly random order, keeping what fits.

    Deterministic given its seed, so experiments stay reproducible.
    """

    name = "Random"

    def __init__(self, seed: int | np.random.Generator = 0) -> None:
        self._rng = coerce_rng(seed, "random-planner")

    def plan(self, instance: TideInstance) -> TidePlan:
        ids = list(instance.target_ids())
        order = [ids[i] for i in self._rng.permutation(len(ids))]
        route, evaluation = append_feasible(instance, order)
        return TidePlan(tuple(route), evaluation, self.name)


class GreedyWeightPlanner(Planner):
    """Serve the heaviest targets first, ignoring geometry and cost."""

    name = "Greedy-Weight"

    def plan(self, instance: TideInstance) -> TidePlan:
        order = sorted(
            instance.target_ids(),
            key=lambda nid: (-instance.target(nid).weight, nid),
        )
        route, evaluation = append_feasible(instance, order)
        return TidePlan(tuple(route), evaluation, self.name)


class EdfPlanner(Planner):
    """Serve the target whose window closes soonest, first."""

    name = "EDF"

    def plan(self, instance: TideInstance) -> TidePlan:
        order = sorted(
            instance.target_ids(),
            key=lambda nid: (instance.target(nid).window_end, nid),
        )
        route, evaluation = append_feasible(instance, order)
        return TidePlan(tuple(route), evaluation, self.name)


class NearestFirstPlanner(Planner):
    """Repeatedly drive to the geographically closest appendable target."""

    name = "Nearest-First"

    def plan(self, instance: TideInstance) -> TidePlan:
        route: list[int] = []
        evaluation = evaluate_route(instance, route)
        remaining = set(instance.target_ids())
        position = instance.start_position
        while remaining:
            ranked = sorted(
                remaining,
                key=lambda nid: (
                    position.distance_to(instance.target(nid).position),
                    nid,
                ),
            )
            appended = False
            for node_id in ranked:
                trial = route + [node_id]
                trial_eval = evaluate_route(instance, trial)
                if trial_eval.feasible:
                    route = trial
                    evaluation = trial_eval
                    position = instance.target(node_id).position
                    remaining.discard(node_id)
                    appended = True
                    break
            if not appended:
                break
        return TidePlan(tuple(route), evaluation, self.name)


class TspPlanner(Planner):
    """Shortest open tour over all targets; serve what stays feasible.

    Builds a nearest-neighbour + 2-opt route over the target positions
    (anchored at the charger's start), then appends targets in tour order.
    Good travel economy, completely window-blind.
    """

    name = "TSP"

    def plan(self, instance: TideInstance) -> TidePlan:
        targets: Sequence[TideTarget] = instance.targets
        if not targets:
            return TidePlan((), evaluate_route(instance, []), self.name)
        # Index 0 is the charger start; 1..n are targets.
        points = [instance.start_position] + [t.position for t in targets]
        order = nearest_neighbour_tour(points, start_index=0)
        order = two_opt(points, order, closed=False)
        # Rotate so the route begins at the charger start, then drop it.
        start_at = order.index(0)
        rotated = order[start_at:] + order[:start_at]
        visit_ids = [targets[i - 1].node_id for i in rotated if i != 0]
        route, evaluation = append_feasible(instance, visit_ids)
        return TidePlan(tuple(route), evaluation, self.name)
