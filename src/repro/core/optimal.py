"""Exact TIDE solvers for small instances.

Used to measure CSA's empirical approximation ratio (EXP-08) and to
cross-validate the greedy in tests.  Two solvers:

* :func:`solve_tide_bruteforce` — enumerate every ordered subset; the
  ground truth for tiny instances (n <= 8) and the oracle the DP solver
  is itself tested against.
* :func:`solve_tide_exact` — Held-Karp-style dynamic programming over
  (visited-set, last-target) states with Pareto label sets over the two
  resources (finish time, consumed energy).  A label ``(t, e)`` dominates
  ``(t', e')`` iff ``t <= t'`` and ``e <= e'``; dominated labels can never
  complete a route the dominating one cannot, because later legs depend on
  the past only through time, energy and position.  Practical to ~14
  targets.

Both maximise the modular (weight-sum) utility — the utility the paper's
evaluation uses — and return a :class:`~repro.core.tide.TidePlan`.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.tide import TideInstance, TidePlan, evaluate_route

__all__ = ["solve_tide_bruteforce", "solve_tide_exact"]

_EPS = 1e-9


def solve_tide_bruteforce(
    instance: TideInstance, max_targets: int = 8
) -> TidePlan:
    """Optimal plan by exhaustive enumeration of ordered subsets.

    Factorially expensive; refuses instances with more than
    ``max_targets`` targets.
    """
    ids = instance.target_ids()
    if len(ids) > max_targets:
        raise ValueError(
            f"brute force limited to {max_targets} targets, got {len(ids)}"
        )
    best_route: tuple[int, ...] = ()
    best_eval = evaluate_route(instance, [])
    best_utility = 0.0
    for size in range(1, len(ids) + 1):
        for perm in permutations(ids, size):
            evaluation = evaluate_route(instance, perm)
            if evaluation.feasible and evaluation.utility > best_utility + _EPS:
                best_route = perm
                best_eval = evaluation
                best_utility = evaluation.utility
    return TidePlan(best_route, best_eval, "BruteForce")


def _dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """Whether label ``a`` (time, energy) dominates label ``b``."""
    return a[0] <= b[0] + _EPS and a[1] <= b[1] + _EPS


def _insert_label(
    labels: list[tuple[float, float, tuple[int, ...]]],
    candidate: tuple[float, float, tuple[int, ...]],
) -> bool:
    """Add ``candidate`` to a Pareto label list; returns True if kept."""
    cand_key = (candidate[0], candidate[1])
    for time_, energy_, _route in labels:
        if _dominates((time_, energy_), cand_key):
            return False
    labels[:] = [
        lbl for lbl in labels if not _dominates(cand_key, (lbl[0], lbl[1]))
    ]
    labels.append(candidate)
    return True


def solve_tide_exact(instance: TideInstance, max_targets: int = 14) -> TidePlan:
    """Optimal plan by Pareto-label dynamic programming.

    State: (bitmask of served targets, index of last target).  Each state
    keeps the Pareto frontier of (finish time, consumed energy) labels,
    with the generating route attached for reconstruction.  The optimum is
    the heaviest mask with any surviving label.
    """
    targets = instance.targets
    n = len(targets)
    if n > max_targets:
        raise ValueError(
            f"exact DP limited to {max_targets} targets, got {n} "
            "(use CSA for larger instances)"
        )
    if n == 0:
        return TidePlan((), evaluate_route(instance, []), "ExactDP")

    weights = [t.weight for t in targets]

    # labels[(mask, last)] -> list of (finish_time, energy, route)
    labels: dict[tuple[int, int], list[tuple[float, float, tuple[int, ...]]]] = {}

    def try_extend(
        mask: int,
        position_index: int | None,
        time_: float,
        energy_: float,
        route: tuple[int, ...],
        next_index: int,
    ) -> None:
        target = targets[next_index]
        if position_index is None:
            origin = instance.start_position
        else:
            origin = targets[position_index].position
        leg = origin.distance_to(target.position)
        arrival = time_ + leg / instance.speed_m_s
        service_start = max(arrival, target.window_start)
        if service_start > target.window_end + _EPS:
            return
        new_energy = (
            energy_
            + leg * instance.travel_cost_j_per_m
            + target.service_energy_j
        )
        if new_energy > instance.energy_budget_j + _EPS:
            return
        finish = service_start + target.service_duration
        new_mask = mask | (1 << next_index)
        key = (new_mask, next_index)
        _insert_label(
            labels.setdefault(key, []),
            (finish, new_energy, route + (target.node_id,)),
        )

    # Seed with single-target routes.
    for i in range(n):
        try_extend(0, None, instance.start_time, 0.0, (), i)

    # Expand masks in increasing popcount so every predecessor is final.
    by_popcount: dict[int, list[tuple[int, int]]] = {}
    processed: set[tuple[int, int]] = set()
    frontier = sorted(labels.keys())
    while frontier:
        by_popcount.clear()
        for key in frontier:
            by_popcount.setdefault(bin(key[0]).count("1"), []).append(key)
        next_frontier: list[tuple[int, int]] = []
        for popcount in sorted(by_popcount):
            for key in by_popcount[popcount]:
                if key in processed:
                    continue
                processed.add(key)
                mask, last = key
                for time_, energy_, route in list(labels.get(key, [])):
                    for nxt in range(n):
                        if mask & (1 << nxt):
                            continue
                        before = len(labels.get((mask | (1 << nxt), nxt), []))
                        try_extend(mask, last, time_, energy_, route, nxt)
                        after_key = (mask | (1 << nxt), nxt)
                        if len(labels.get(after_key, [])) != before:
                            if after_key not in processed:
                                next_frontier.append(after_key)
        frontier = sorted(set(next_frontier))

    best_route: tuple[int, ...] = ()
    best_weight = 0.0
    for (mask, _last), lbls in labels.items():
        if not lbls:
            continue
        weight = sum(weights[i] for i in range(n) if mask & (1 << i))
        if weight > best_weight + _EPS:
            best_weight = weight
            # Any label of the mask serves the same set; take the earliest.
            best_route = min(lbls)[2]
    evaluation = evaluate_route(instance, best_route)
    assert evaluation.feasible, "exact DP produced an infeasible route"
    return TidePlan(best_route, evaluation, "ExactDP")
