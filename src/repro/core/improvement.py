"""Window-aware local search over TIDE routes.

CSA's greedy insertion fixes visit order at insertion time; small
reorderings can shorten travel enough to fund an extra victim.  This
module provides the classic repair moves, each validated against the
full TIDE feasibility (windows *and* budget):

* **2-opt** — reverse a subsequence (undoes route crossings);
* **or-opt** — relocate a short chain (1..3 visits) elsewhere;
* **reinsertion** — after the moves free budget, retry inserting
  unrouted targets.

All moves are strictly improving in (utility, -energy) lexicographic
order, so the search terminates.  ``improve_plan`` wraps a finished
:class:`~repro.core.tide.TidePlan`; ``CsaPlanner`` applies it when
constructed with ``improve=True`` (ablation ABL-04 measures the gain).
"""

from __future__ import annotations

from repro.core.tide import (
    RouteEvaluation,
    TideInstance,
    TidePlan,
    evaluate_route,
)
from repro.core.utility import ModularUtility, Utility

__all__ = ["improve_plan", "improve_route"]

_EPS = 1e-9


def _value(utility: Utility, evaluation: RouteEvaluation) -> float:
    return utility.value(evaluation.served_ids())


def _better(
    cand_value: float,
    cand_energy: float,
    base_value: float,
    base_energy: float,
) -> bool:
    """Strict lexicographic improvement: more utility, or same for less energy."""
    if cand_value > base_value + _EPS:
        return True
    return cand_value >= base_value - _EPS and cand_energy < base_energy - _EPS


def _two_opt_pass(
    instance: TideInstance,
    route: list[int],
    evaluation: RouteEvaluation,
    utility: Utility,
) -> tuple[list[int], RouteEvaluation, bool]:
    base_value = _value(utility, evaluation)
    n = len(route)
    for i in range(n - 1):
        for j in range(i + 1, n):
            trial = route[:i] + list(reversed(route[i : j + 1])) + route[j + 1 :]
            trial_eval = evaluate_route(instance, trial)
            if not trial_eval.feasible:
                continue
            if _better(
                _value(utility, trial_eval),
                trial_eval.energy_j,
                base_value,
                evaluation.energy_j,
            ):
                return trial, trial_eval, True
    return route, evaluation, False


def _or_opt_pass(
    instance: TideInstance,
    route: list[int],
    evaluation: RouteEvaluation,
    utility: Utility,
    max_chain: int = 3,
) -> tuple[list[int], RouteEvaluation, bool]:
    base_value = _value(utility, evaluation)
    n = len(route)
    for length in range(1, min(max_chain, n) + 1):
        for start in range(n - length + 1):
            chain = route[start : start + length]
            rest = route[:start] + route[start + length :]
            for position in range(len(rest) + 1):
                if position == start:
                    continue
                trial = rest[:position] + chain + rest[position:]
                trial_eval = evaluate_route(instance, trial)
                if not trial_eval.feasible:
                    continue
                if _better(
                    _value(utility, trial_eval),
                    trial_eval.energy_j,
                    base_value,
                    evaluation.energy_j,
                ):
                    return trial, trial_eval, True
    return route, evaluation, False


def _reinsertion_pass(
    instance: TideInstance,
    route: list[int],
    evaluation: RouteEvaluation,
    utility: Utility,
) -> tuple[list[int], RouteEvaluation, bool]:
    served = set(route)
    unrouted = [nid for nid in instance.target_ids() if nid not in served]
    base_served = evaluation.served_ids()
    for node_id in unrouted:
        gain = utility.marginal(base_served, node_id)
        if gain <= _EPS:
            continue
        for position in range(len(route) + 1):
            trial = route[:position] + [node_id] + route[position:]
            trial_eval = evaluate_route(instance, trial)
            if trial_eval.feasible:
                return trial, trial_eval, True
    return route, evaluation, False


def improve_route(
    instance: TideInstance,
    route: list[int],
    utility: Utility | None = None,
    max_rounds: int = 50,
) -> tuple[list[int], RouteEvaluation]:
    """Improve a feasible route with 2-opt, or-opt and reinsertion.

    Returns the improved route and its evaluation.  Raises ``ValueError``
    for an infeasible input route.
    """
    evaluation = evaluate_route(instance, route)
    if not evaluation.feasible:
        raise ValueError(
            f"improve_route needs a feasible route: {evaluation.infeasible_reason}"
        )
    util = utility or ModularUtility.from_targets(instance.targets)
    current = list(route)
    for _ in range(max_rounds):
        moved = False
        for improver in (_reinsertion_pass, _two_opt_pass, _or_opt_pass):
            current, evaluation, improved = improver(
                instance, current, evaluation, util
            )
            moved = moved or improved
        if not moved:
            break
    return current, evaluation


def improve_plan(
    instance: TideInstance,
    plan: TidePlan,
    utility: Utility | None = None,
) -> TidePlan:
    """Apply local search to a finished plan; never degrades it."""
    route, evaluation = improve_route(instance, list(plan.route), utility)
    util = utility or ModularUtility.from_targets(instance.targets)
    if _better(
        util.value(evaluation.served_ids()),
        evaluation.energy_j,
        util.value(plan.evaluation.served_ids()),
        plan.evaluation.energy_j,
    ):
        return TidePlan(
            route=tuple(route),
            evaluation=evaluation,
            planner_name=plan.planner_name + "+ls",
        )
    return plan
