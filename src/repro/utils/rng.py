"""Deterministic random-number management.

Every stochastic component in the reproduction draws from a
:class:`numpy.random.Generator` obtained through this module, so that a
single integer seed reproduces an entire experiment, and so that logically
independent components (topology generation, traffic, measurement noise,
auditing) consume *independent* streams.  Independent streams matter: if two
components shared one generator, adding a draw to one would silently
perturb the other and break cross-run comparability.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "coerce_rng", "make_rng"]


def _stream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed for a named stream.

    Uses SHA-256 over ``(root_seed, name)`` so the mapping is stable across
    Python processes and versions (unlike ``hash``, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int, name: str = "default") -> np.random.Generator:
    """Return a generator for the named stream under ``seed``."""
    return np.random.default_rng(_stream_seed(seed, name))


def coerce_rng(
    seed: int | np.random.Generator, stream: str = "default"
) -> np.random.Generator:
    """Coerce an ``int | Generator`` seed argument to a Generator.

    This is the single sanctioned implementation of the ubiquitous
    "seed may be an integer or an existing generator" convention (enforced
    by reprolint rule RL-D004):

    * an existing :class:`numpy.random.Generator` passes through untouched,
      so callers can share one stream across components on purpose;
    * an integer seed derives the independent named ``stream`` via
      :func:`make_rng`, so two components coercing the same root seed under
      different stream names stay decorrelated.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise TypeError(
            f"seed must be an int or numpy Generator, got {type(seed).__name__}"
        )
    return make_rng(int(seed), stream)


class RngFactory:
    """Factory producing named, independent random streams from one seed.

    Examples
    --------
    >>> factory = RngFactory(7)
    >>> topo_rng = factory.stream("topology")
    >>> noise_rng = factory.stream("noise")

    Repeated requests for the same stream name return fresh generators with
    identical state, so a component can re-derive its stream without
    coordinating with other components.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator for the independent stream called ``name``."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        return make_rng(self._seed, name)

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are independent of this one's.

        Useful for per-trial fan-out: ``factory.child(f"trial{i}")`` gives
        each trial its own namespace of streams.
        """
        return RngFactory(_stream_seed(self._seed, f"child:{name}"))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"
