"""Argument-validation helpers with precise error messages.

Model constructors across the reproduction take many physical parameters
(powers, distances, capacities).  Validating them eagerly at the boundary —
with the offending name and value in the message — turns silent physics
nonsense (negative battery capacity, probability 1.3) into immediate,
debuggable failures.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_non_negative_array",
    "check_positive",
    "check_probability",
    "require_float64",
]


def _as_float(name: str, value: Any) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    return result


def check_finite(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to be finite."""
    result = _as_float(name, value)
    if not math.isfinite(result):
        raise ValueError(f"{name} must be finite, got {result!r}")
    return result


def check_positive(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to be finite and > 0."""
    result = check_finite(name, value)
    if result <= 0.0:
        raise ValueError(f"{name} must be > 0, got {result!r}")
    return result


def check_non_negative(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to be finite and >= 0."""
    result = check_finite(name, value)
    if result < 0.0:
        raise ValueError(f"{name} must be >= 0, got {result!r}")
    return result


def check_non_negative_array(name: str, value: Any) -> np.ndarray:
    """Return ``value`` as a float ndarray of finite, >= 0 entries.

    The batched counterpart of :func:`check_non_negative` for the
    vectorized EM kernels: one fused pass validates the whole array.
    """
    result = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(result)):
        raise ValueError(f"{name} must be finite everywhere")
    if np.any(result < 0.0):
        raise ValueError(f"{name} must be >= 0 everywhere")
    return result


#: Narrowed float dtypes rejected at the bit-for-bit kernel boundaries.
_NARROWED_DTYPES = (np.dtype(np.float16), np.dtype(np.float32), np.dtype(np.complex64))


def require_float64(arr: Any, name: str) -> np.ndarray:
    """Return ``arr`` as a float64 ndarray, rejecting narrowed floats.

    The vectorized kernels (:class:`~repro.network.energy_ledger.EnergyLedger`,
    the :class:`~repro.em.charger_array.ChargerArray` batch APIs) must stay
    bit-for-bit faithful to the paper's tables, which requires float64 end
    to end.  Python scalars, sequences and integer arrays convert exactly
    and are accepted; float16/float32 (and complex64) input is *rejected*
    rather than silently widened, because the precision was already lost
    upstream and widening would only hide the divergence.
    """
    result = np.asarray(arr)
    if result.dtype == np.float64:
        return result
    if result.dtype in _NARROWED_DTYPES:
        raise TypeError(
            f"{name} must be float64, got {result.dtype}: the bit-for-bit "
            "kernels forbid narrowed floats — convert the upstream data "
            "to float64 before it reaches this boundary"
        )
    return np.asarray(arr, dtype=np.float64)


def check_probability(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to lie in [0, 1]."""
    result = check_finite(name, value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result!r}")
    return result


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as a float, requiring it to lie in the given range."""
    result = check_finite(name, value)
    if inclusive:
        if not low <= result <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {result!r}")
    else:
        if not low < result < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {result!r}")
    return result
