"""Argument-validation helpers with precise error messages.

Model constructors across the reproduction take many physical parameters
(powers, distances, capacities).  Validating them eagerly at the boundary —
with the offending name and value in the message — turns silent physics
nonsense (negative battery capacity, probability 1.3) into immediate,
debuggable failures.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = [
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_non_negative_array",
    "check_positive",
    "check_probability",
]


def _as_float(name: str, value: Any) -> float:
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    return result


def check_finite(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to be finite."""
    result = _as_float(name, value)
    if not math.isfinite(result):
        raise ValueError(f"{name} must be finite, got {result!r}")
    return result


def check_positive(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to be finite and > 0."""
    result = check_finite(name, value)
    if result <= 0.0:
        raise ValueError(f"{name} must be > 0, got {result!r}")
    return result


def check_non_negative(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to be finite and >= 0."""
    result = check_finite(name, value)
    if result < 0.0:
        raise ValueError(f"{name} must be >= 0, got {result!r}")
    return result


def check_non_negative_array(name: str, value: Any) -> np.ndarray:
    """Return ``value`` as a float ndarray of finite, >= 0 entries.

    The batched counterpart of :func:`check_non_negative` for the
    vectorized EM kernels: one fused pass validates the whole array.
    """
    result = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(result)):
        raise ValueError(f"{name} must be finite everywhere")
    if np.any(result < 0.0):
        raise ValueError(f"{name} must be >= 0 everywhere")
    return result


def check_probability(name: str, value: Any) -> float:
    """Return ``value`` as a float, requiring it to lie in [0, 1]."""
    result = check_finite(name, value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result!r}")
    return result


def check_in_range(
    name: str,
    value: Any,
    low: float,
    high: float,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as a float, requiring it to lie in the given range."""
    result = check_finite(name, value)
    if inclusive:
        if not low <= result <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {result!r}")
    else:
        if not low < result < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {result!r}")
    return result
