"""Planar geometry primitives used by the WRSN and charger models.

All positions in the reproduction are 2-D points in metres.  The mobile
charger travels in the plane; propagation distances for the charging model
are Euclidean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Point", "distance", "pairwise_distances", "tour_length"]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable point in the plane, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """This point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def pairwise_distances(points: Sequence[Point]) -> np.ndarray:
    """Dense symmetric distance matrix for a sequence of points.

    Returns an ``(n, n)`` float array with zeros on the diagonal.
    """
    coords = np.array([(p.x, p.y) for p in points], dtype=float)
    if coords.size == 0:
        return np.zeros((0, 0))
    deltas = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((deltas**2).sum(axis=-1))


def tour_length(points: Iterable[Point], closed: bool = True) -> float:
    """Total length of the path visiting ``points`` in order.

    With ``closed=True`` (the default) the path returns to its start, i.e.
    the points form a tour; with ``closed=False`` it is an open route.
    """
    pts = list(points)
    if len(pts) < 2:
        return 0.0
    total = sum(pts[i].distance_to(pts[i + 1]) for i in range(len(pts) - 1))
    if closed:
        total += pts[-1].distance_to(pts[0])
    return total
