"""Foundational utilities shared across the reproduction.

This subpackage deliberately contains only dependency-free helpers:
deterministic random-number management (:mod:`repro.utils.rng`), planar
geometry (:mod:`repro.utils.geometry`), and argument validation
(:mod:`repro.utils.validation`).
"""

from repro.utils.geometry import (
    Point,
    distance,
    pairwise_distances,
    tour_length,
)
from repro.utils.rng import RngFactory, coerce_rng, make_rng
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "Point",
    "RngFactory",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "coerce_rng",
    "distance",
    "make_rng",
    "pairwise_distances",
    "tour_length",
]
