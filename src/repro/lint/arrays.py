"""Abstract interpretation of NumPy array semantics (RL-N analysis core).

The vectorized kernels (SoA :class:`~repro.network.energy_ledger.EnergyLedger`,
the batch EM APIs, the spatial grid) must stay bit-for-bit faithful to the
paper's tables, and the bug classes that silently break that fidelity are
*array-semantic*: dtype narrowing, unintended broadcasting, in-place writes
through views, integer overflow in grid-key arithmetic, and reductions over
empty operands.  None of them are visible to a per-statement AST walk.

This module tracks a three-part abstract value per local variable:

* a **dtype lattice** over the chain
  ``bool < int32 < intp < int64 < float32 < float64 < complex128`` with a
  distinguished top (unknown) element and *weak* python-scalar elements
  (``pyint``/``pyfloat``) that follow NumPy's value-independent promotion
  (a python float against an int array yields float64; against float32 it
  stays float32);
* a **symbolic shape** tuple whose dims are int literals, symbols seeded
  from ``np.zeros/empty/full/asarray`` size expressions, annotations, and
  ``m, n = x.shape`` unpacking, or unknown — unified with NumPy broadcast
  semantics, including detection of *mutual stretching* (the
  ``(N,) op (N, 1) -> (N, N)`` blowup);
* a **may-alias set** of buffer labels — ``param:<name>`` for arguments,
  ``attr:<dotted>`` for object state, ``alloc:<line>:<col>`` for local
  allocations — propagated through views (slicing, ``reshape``, ``ravel``,
  ``.T``) and cut by fresh buffers (``copy``, arithmetic, ``astype``).

Transfer runs over the existing per-function CFG
(:func:`repro.lint.cfg.build_cfg` + :meth:`~repro.lint.cfg.CFG.forward_may`):
an immutable :class:`Env` implements ``|`` as the pointwise lattice join,
so the generic may-solver threads the rich state unchanged.  After the
fixpoint, one reporting pass over the statement nodes (with their final
in-states) emits :class:`ArrayEvent` records, which the RL-N001..N005
rules in :mod:`repro.lint.rules.numerics` turn into findings.  Calls into
other project functions are resolved through the
:class:`~repro.lint.callgraph.CallGraph` and summarised (return dtype /
shape / which parameters the result may alias), so a view returned by a
helper still carries its aliasing into the caller.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.cfg import build_cfg

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.project import ModuleRecord, ProjectModel

__all__ = ["iter_module_events"]


# ----------------------------------------------------------------------
# Dtype lattice
# ----------------------------------------------------------------------
#: Top of the dtype lattice: an unknown element type.
DTYPE_TOP = "top"

#: Concrete dtypes in promotion order.  ``intp`` is the platform int that
#: ``np.arange``/``astype(int)`` produce — 32-bit on 32-bit platforms,
#: which is exactly what RL-N005 polices in grid-key arithmetic.
_CHAIN = ("bool", "int32", "intp", "int64", "float32", "float64", "complex128")

#: Join order: weak python scalars interleave where their *joined* value
#: is still safely described (a python int is at most an int; a python
#: float is at most a float64-compatible float).
_JOIN_ORDER = (
    "bool", "pyint", "int32", "intp", "int64", "pyfloat",
    "float32", "float64", "complex128",
)
_JOIN_RANK = {name: rank for rank, name in enumerate(_JOIN_ORDER)}

_CHAIN_RANK = {name: rank for rank, name in enumerate(_CHAIN)}

_INT_DTYPES = frozenset({"int32", "intp", "int64", "pyint"})
_PLATFORM_INTS = frozenset({"int32", "intp"})
_WEAK_DTYPES = frozenset({"pyint", "pyfloat"})
_NARROW_FLOATS = frozenset({"float16", "float32"})


def dtype_join(a: str | None, b: str | None) -> str | None:
    """Least upper bound at a control-flow merge (``None`` is bottom)."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if DTYPE_TOP in (a, b):
        return DTYPE_TOP
    if a in _JOIN_RANK and b in _JOIN_RANK:
        return a if _JOIN_RANK[a] >= _JOIN_RANK[b] else b
    return DTYPE_TOP


def dtype_meet(a: str | None, b: str | None) -> str | None:
    """Greatest lower bound (dual of :func:`dtype_join`)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a == DTYPE_TOP:
        return b
    if b == DTYPE_TOP:
        return a
    if a in _JOIN_RANK and b in _JOIN_RANK:
        return a if _JOIN_RANK[a] <= _JOIN_RANK[b] else b
    return None


def promote(a: str | None, b: str | None) -> str | None:
    """NumPy binary-op result dtype (NEP-50 style, value-independent).

    Weak python scalars do not widen a concrete array dtype of the same
    kind (``float32_array + 1.5`` stays float32), but a python float
    against an integer array produces float64.
    """
    if a is None or b is None or DTYPE_TOP in (a, b):
        return DTYPE_TOP
    if a == b:
        return a
    if a in _WEAK_DTYPES and b in _WEAK_DTYPES:
        return a if _JOIN_RANK[a] >= _JOIN_RANK[b] else b
    if a in _WEAK_DTYPES:
        a, b = b, a
    if b in _WEAK_DTYPES:  # a is concrete here
        if b == "pyint":
            return a if a != "bool" else "intp"
        # pyfloat: floats/complex absorb it, ints promote to float64.
        return a if a in ("float32", "float64", "complex128") else "float64"
    if a in _CHAIN_RANK and b in _CHAIN_RANK:
        return a if _CHAIN_RANK[a] >= _CHAIN_RANK[b] else b
    return DTYPE_TOP


def _is_int(dtype: str | None) -> bool:
    return dtype in _INT_DTYPES


# ----------------------------------------------------------------------
# Symbolic shape domain
# ----------------------------------------------------------------------
#: A dim is an int literal, a symbol string, or ``None`` (unknown);
#: a shape is a tuple of dims or ``None`` (unknown rank).
Dim = "int | str | None"
Shape = "tuple | None"


def format_shape(shape: tuple | None) -> str:
    """Human-readable shape for messages: ``(n, 1)``, ``?`` for unknown."""
    if shape is None:
        return "(?)"
    dims = ", ".join("?" if d is None else str(d) for d in shape)
    if len(shape) == 1:
        dims += ","
    return f"({dims})"


def shape_join(a: tuple | None, b: tuple | None) -> tuple | None:
    """Control-flow join: equal dims survive, disagreements go unknown."""
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(da if da == db else None for da, db in zip(a, b))


def _stretchable(dim) -> bool:
    """Whether broadcasting against this dim actually replicates data."""
    return isinstance(dim, str) or (isinstance(dim, int) and dim > 1)


def broadcast_shapes(
    a: tuple | None, b: tuple | None
) -> tuple[tuple | None, bool]:
    """Broadcast-unify two symbolic shapes.

    Returns ``(result_shape, mutual_stretch)``.  ``mutual_stretch`` is
    True when *both* operands were replicated along some axis — the
    ``(N,) op (N, 1) -> (N, N)`` outer-product blowup RL-N002 reports.
    Rank extension of a true scalar (rank 0) is never a stretch, so
    ``array op scalar`` stays silent; unknown dims unify to unknown
    without claiming a stretch.
    """
    if a is None or b is None:
        return None, False
    rank = max(len(a), len(b))
    out: list = []
    stretched_a = stretched_b = False
    for axis in range(1, rank + 1):
        da = a[-axis] if axis <= len(a) else "missing"
        db = b[-axis] if axis <= len(b) else "missing"
        if da == "missing":
            out.append(db)
            if len(a) >= 1 and _stretchable(db):
                stretched_a = True
            continue
        if db == "missing":
            out.append(da)
            if len(b) >= 1 and _stretchable(da):
                stretched_b = True
            continue
        if da == db and da is not None:
            out.append(da)
        elif da == 1:
            out.append(db)
            if _stretchable(db):
                stretched_a = True
        elif db == 1:
            out.append(da)
            if _stretchable(da):
                stretched_b = True
        else:
            # Unknown vs anything, distinct symbols, or mismatched
            # literals: no broadcast knowledge (a literal mismatch is a
            # runtime error, not this analysis's business).
            out.append(None)
    return tuple(reversed(out)), stretched_a and stretched_b


# ----------------------------------------------------------------------
# Abstract values and environments
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayValue:
    """The three-part abstract value: dtype x shape x may-alias set.

    ``expanded`` marks values produced by an explicit axis insertion
    (``x[:, None]``, ``keepdims=True``, ``reshape(-1, 1)``) — deliberate
    broadcast setups RL-N002 must not flag.  ``is_view`` marks values
    derived from another buffer without a copy, which is what makes an
    in-place write through them a mutation of someone else's data.
    """

    dtype: str | None = DTYPE_TOP
    shape: tuple | None = None
    aliases: frozenset = frozenset()
    expanded: bool = False
    is_array: bool = False
    is_view: bool = False

    def join(self, other: "ArrayValue") -> "ArrayValue":
        return ArrayValue(
            dtype=dtype_join(self.dtype, other.dtype),
            shape=shape_join(self.shape, other.shape),
            aliases=self.aliases | other.aliases,
            expanded=self.expanded or other.expanded,
            is_array=self.is_array or other.is_array,
            is_view=self.is_view or other.is_view,
        )


#: The completely unknown value.
_TOP_VALUE = ArrayValue()

#: Python scalar values.
_PYINT = ArrayValue(dtype="pyint", shape=())
_PYFLOAT = ArrayValue(dtype="pyfloat", shape=())


class Env(Mapping):
    """Immutable variable environment with ``|`` as the pointwise join.

    Implements ``__or__``/``__ror__`` so the generic
    :meth:`~repro.lint.cfg.CFG.forward_may` solver — which initialises
    node facts to ``frozenset()`` and merges with ``|`` — threads this
    environment through unchanged: ``frozenset() | env`` is ``env``, and
    ``env1 | env2`` joins per variable (a name bound on only one path
    keeps its binding, matching may semantics).
    """

    __slots__ = ("_vars",)

    def __init__(self, variables: dict | None = None) -> None:
        self._vars: dict = dict(variables) if variables else {}

    # Mapping protocol -------------------------------------------------
    def __getitem__(self, name: str) -> ArrayValue:
        return self._vars[name]

    def __iter__(self):
        return iter(self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    # Lattice ----------------------------------------------------------
    def bind(self, name: str, value: ArrayValue) -> "Env":
        merged = dict(self._vars)
        merged[name] = value
        return Env(merged)

    def __or__(self, other):
        if isinstance(other, Env):
            merged = dict(self._vars)
            for name, value in other._vars.items():
                mine = merged.get(name)
                merged[name] = value if mine is None else mine.join(value)
            return Env(merged)
        if isinstance(other, frozenset) and not other:
            return self
        return NotImplemented

    def __ror__(self, other):
        if isinstance(other, frozenset) and not other:
            return self
        return NotImplemented

    def __eq__(self, other) -> bool:
        if isinstance(other, Env):
            return self._vars == other._vars
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Env({self._vars!r})"


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
#: kind -> consuming rule: narrow=RL-N001, broadcast=RL-N002,
#: alias-write=RL-N003, empty-reduce=RL-N004, int-overflow=RL-N005.
@dataclass(frozen=True)
class ArrayEvent:
    """One hazard the interpreter observed, anchored to its AST node."""

    kind: str
    node: ast.AST
    message: str


# ----------------------------------------------------------------------
# Syntactic helpers shared by the interpreter
# ----------------------------------------------------------------------
_NUMPY_DTYPE_NAMES = {
    "numpy.bool_": "bool", "bool": "bool",
    "numpy.int8": "int32", "numpy.int16": "int32",
    "numpy.int32": "int32", "numpy.uint32": "int32",
    "numpy.intp": "intp", "int": "intp",
    "numpy.int64": "int64", "numpy.uint64": "int64",
    "numpy.float16": "float16", "numpy.float32": "float32",
    "numpy.float64": "float64", "float": "float64",
    "numpy.complex64": "complex128", "numpy.complex128": "complex128",
    "complex": "complex128",
}

_STRING_DTYPES = {
    "bool": "bool", "int8": "int32", "int16": "int32", "int32": "int32",
    "int64": "int64", "int": "intp", "intp": "intp",
    "float16": "float16", "float32": "float32", "float64": "float64",
    "f4": "float32", "f8": "float64",
    "complex64": "complex128", "complex128": "complex128",
}

#: Reductions that raise (or return garbage) on an empty operand.
_EMPTY_UNSAFE_REDUCTIONS = frozenset({
    "min", "max", "amin", "amax", "nanmin", "nanmax",
    "argmin", "argmax", "mean", "median", "ptp",
})

#: Methods mutating their receiver in place.
_INPLACE_METHODS = frozenset({"fill", "sort", "partition", "put"})

#: Binary ufuncs modelled like operators (promotion + broadcasting).
_BINARY_UFUNCS = frozenset({
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "hypot", "maximum", "minimum", "mod", "remainder", "power", "arctan2",
})

_VIEW_FUNCS = frozenset({"ravel", "atleast_1d", "atleast_2d", "squeeze"})

_FRESH_FLOAT_FUNCS = frozenset({
    "linspace", "logspace", "hypot", "sqrt", "exp", "log", "log10", "sin",
    "cos", "tan", "abs", "absolute", "floor", "ceil", "round",
})


def _positive_int(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, int)
        and not isinstance(expr.value, bool)
        and expr.value >= 1
    )


def _names_in(expr: ast.AST | None) -> set[str]:
    if expr is None:
        return set()
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _suite_exits(body: list[ast.stmt]) -> bool:
    """Whether a suite always leaves the enclosing block (early exit)."""
    if not body:
        return False
    last = body[-1]
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


class _GuardScan:
    """Syntactic emptiness-guard map for RL-N004.

    A reduction over ``x`` is *guarded* when it sits in a region
    dominated by a test mentioning ``x`` (or a size name linked to it via
    ``n = len(x)`` / ``n = x.size`` / ``m, k = x.shape``): inside an
    ``if``/``while`` on the test, or after an early-exit ``if`` whose
    suite unconditionally leaves the block.  Guards propagate through
    derivation — a value computed from a guarded array inherits the
    guard, matching the ``if not mask.any(): return`` idiom.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.guarded_at: dict[int, frozenset] = {}
        self._size_of: dict[str, set[str]] = {}
        self._walk(func.body, set())

    def _link_sizes(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target, value = stmt.targets[0], stmt.value
        if isinstance(target, ast.Name):
            measured = self._measured_name(value)
            if measured is not None:
                self._size_of.setdefault(target.id, set()).add(measured)
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Attribute):
            if value.attr == "shape" and isinstance(value.value, ast.Name):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self._size_of.setdefault(elt.id, set()).add(
                            value.value.id
                        )

    @staticmethod
    def _measured_name(value: ast.expr) -> str | None:
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "len"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
        ):
            return value.args[0].id
        if isinstance(value, ast.Attribute) and value.attr == "size":
            if isinstance(value.value, ast.Name):
                return value.value.id
        return None

    def _guard_names(self, test: ast.expr) -> set[str]:
        names = _names_in(test)
        for node in ast.walk(test):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "any", "all"
                ):
                    names |= _names_in(func.value)
        expanded = set(names)
        for name in names:
            expanded |= self._size_of.get(name, set())
        return expanded

    def _walk(self, body: list[ast.stmt], guarded: set) -> None:
        guarded = set(guarded)
        for stmt in body:
            self.guarded_at[id(stmt)] = frozenset(guarded)
            self._link_sizes(stmt)
            if isinstance(stmt, ast.Assign):
                # Derived-value guard inheritance.
                sources = _names_in(stmt.value)
                if sources and sources & guarded:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            guarded.add(target.id)
            elif isinstance(stmt, ast.If):
                gnames = self._guard_names(stmt.test)
                self._walk(stmt.body, guarded | gnames)
                self._walk(stmt.orelse, guarded | gnames)
                if _suite_exits(stmt.body) and not stmt.orelse:
                    guarded |= gnames
            elif isinstance(stmt, ast.While):
                self._walk(stmt.body, guarded | self._guard_names(stmt.test))
                self._walk(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._walk(stmt.body, guarded)
                self._walk(stmt.orelse, guarded)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk(stmt.body, guarded)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, guarded)
                for handler in stmt.handlers:
                    self._walk(handler.body, guarded)
                self._walk(stmt.orelse, guarded)
                self._walk(stmt.finalbody, guarded)


# ----------------------------------------------------------------------
# Inter-procedural summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FunctionSummary:
    """What a call to a project function yields, from the caller's view."""

    dtype: str | None = DTYPE_TOP
    shape: tuple | None = None
    #: Positional-parameter indices the return value may alias.
    param_aliases: tuple = ()
    is_array: bool = False
    is_view: bool = False


_TOP_SUMMARY = FunctionSummary()


def _export_shape(shape: tuple | None) -> tuple | None:
    """Strip callee-local symbols from a summary shape (keep literals)."""
    if shape is None:
        return None
    return tuple(d if isinstance(d, int) else None for d in shape)


# ----------------------------------------------------------------------
# The per-function interpreter
# ----------------------------------------------------------------------
class _Interp:
    """Abstract interpretation of one function body.

    Runs twice over the same transfer function: once inside the CFG
    fixpoint (``reporting=False``, events suppressed) and once, after
    convergence, over each statement node with its final in-state
    (``reporting=True``) to emit events exactly once per site.
    """

    def __init__(
        self, analysis: "ArrayAnalysis", info: FunctionInfo
    ) -> None:
        self.analysis = analysis
        self.info = info
        self.record = info.record
        self.ctx = info.record.ctx
        self.events: list[ArrayEvent] = []
        self.reporting = False
        self._stmt: ast.stmt | None = None
        self._emitted: set = set()
        #: Symbols provably >= 1 (``np.empty(k + 1)`` style sizes).
        self._positive: set[str] = set()
        self._guards = _GuardScan(info.node)
        self._load_lines = self._collect_load_lines(info.node)

    # -- bookkeeping ---------------------------------------------------
    @staticmethod
    def _collect_load_lines(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, list[int]]:
        lines: dict[str, list[int]] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                lines.setdefault(node.id, []).append(node.lineno)
        return lines

    def _used_after(self, name: str, lineno: int) -> bool:
        return any(line > lineno for line in self._load_lines.get(name, ()))

    def _emit(self, kind: str, node: ast.AST, message: str) -> None:
        if not self.reporting:
            return
        key = (kind, id(node), message)
        if key not in self._emitted:
            self._emitted.add(key)
            self.events.append(ArrayEvent(kind, node, message))

    def _guarded(self, names: set[str]) -> bool:
        stmt = self._stmt
        if stmt is None or not names:
            return False
        return bool(names & self._guards.guarded_at.get(id(stmt), frozenset()))

    # -- entry environment --------------------------------------------
    def seed_env(self) -> Env:
        variables: dict = {}
        args = self.info.node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for param in params:
            variables[param.arg] = self._param_value(param)
        if args.vararg is not None:
            variables[args.vararg.arg] = _TOP_VALUE
        if args.kwarg is not None:
            variables[args.kwarg.arg] = _TOP_VALUE
        return Env(variables)

    def _param_value(self, param: ast.arg) -> ArrayValue:
        alias = frozenset({f"param:{param.arg}"})
        annotation = param.annotation
        if annotation is None:
            return ArrayValue(aliases=alias)
        resolved = self.ctx.resolve_call_name(annotation)
        if resolved in ("numpy.ndarray", "numpy.typing.NDArray"):
            return ArrayValue(aliases=alias, is_array=True)
        if isinstance(annotation, ast.Subscript):
            base = self.ctx.resolve_call_name(annotation.value)
            if base in ("numpy.typing.NDArray", "numpy.ndarray"):
                dtype = self._dtype_from_expr(annotation.slice)
                return ArrayValue(
                    dtype=dtype or DTYPE_TOP, aliases=alias, is_array=True
                )
        if resolved == "int":
            return ArrayValue(dtype="pyint", shape=(), aliases=alias)
        if resolved == "float":
            return ArrayValue(dtype="pyfloat", shape=(), aliases=alias)
        return ArrayValue(aliases=alias)

    # -- transfer ------------------------------------------------------
    def transfer(self, stmt: ast.stmt, env) -> Env:
        if not isinstance(env, Env):  # solver-initial frozenset()
            env = Env()
        self._stmt = stmt
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                env = self._assign(target, stmt.value, value, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return env
            value = self._eval(stmt.value, env)
            return self._assign(stmt.target, stmt.value, value, env)
        if isinstance(stmt, ast.AugAssign):
            return self._aug_assign(stmt, env)
        if isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._eval(stmt.value, env)
            return env
        if isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, env)
            return env
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env = env.bind(stmt.target.id, self._iter_element(iterable))
            return env
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, env)
            return env
        if isinstance(stmt, ast.Delete):
            remaining = {
                n: v for n, v in env.items()
                if n not in _names_in(stmt)
            }
            return Env(remaining)
        return env

    @staticmethod
    def _iter_element(iterable: ArrayValue) -> ArrayValue:
        if iterable.is_array and iterable.shape and len(iterable.shape) >= 2:
            return ArrayValue(
                dtype=iterable.dtype,
                shape=iterable.shape[1:],
                aliases=iterable.aliases,
                is_array=True,
                is_view=True,
            )
        return ArrayValue(dtype=iterable.dtype, shape=None)

    def _assign(
        self,
        target: ast.expr,
        value_expr: ast.expr,
        value: ArrayValue,
        env: Env,
    ) -> Env:
        if isinstance(target, ast.Name):
            return env.bind(target.id, value)
        if isinstance(target, (ast.Tuple, ast.List)):
            return self._assign_tuple(target, value_expr, env)
        if isinstance(target, ast.Subscript):
            self._check_mutation(target.value, env, "subscripted write")
            return env
        return env  # attribute targets: object state, out of scope

    def _assign_tuple(
        self, target: ast.Tuple | ast.List, value_expr: ast.expr, env: Env
    ) -> Env:
        # ``m, n = x.shape`` seeds symbolic dims on x and binds the
        # names as scalar sizes.
        if (
            isinstance(value_expr, ast.Attribute)
            and value_expr.attr == "shape"
            and isinstance(value_expr.value, ast.Name)
            and all(isinstance(e, ast.Name) for e in target.elts)
        ):
            array_name = value_expr.value.id
            dims = tuple(e.id for e in target.elts)
            current = env.get(array_name)
            if current is not None and current.shape is None:
                env = env.bind(array_name, replace(current, shape=dims))
            for elt in target.elts:
                env = env.bind(elt.id, _PYINT)
            return env
        if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
            value_expr.elts
        ) == len(target.elts):
            for elt, sub in zip(target.elts, value_expr.elts):
                env = self._assign(elt, sub, self._eval(sub, env), env)
            return env
        for elt in target.elts:
            if isinstance(elt, ast.Name):
                env = env.bind(elt.id, _TOP_VALUE)
        return env

    def _aug_assign(self, stmt: ast.AugAssign, env: Env) -> Env:
        value = self._binop_value(
            stmt, stmt.op, self._eval(stmt.target, env),
            self._eval(stmt.value, env),
        )
        if isinstance(stmt.target, ast.Name):
            current = env.get(stmt.target.id)
            # ``x += v`` mutates in place when x is an ndarray.
            if current is not None and current.is_array:
                self._check_mutation(stmt.target, env, "augmented write")
            return env.bind(stmt.target.id, replace(
                value,
                aliases=current.aliases if current else value.aliases,
                is_view=current.is_view if current else False,
            ))
        if isinstance(stmt.target, ast.Subscript):
            self._check_mutation(stmt.target.value, env, "augmented write")
        return env

    # -- mutation (RL-N003) -------------------------------------------
    def _check_mutation(
        self, receiver: ast.expr, env: Env, how: str
    ) -> None:
        if not isinstance(receiver, ast.Name):
            return  # attribute receivers mutate owned object state
        name = receiver.id
        value = env.get(name)
        if value is None or not value.aliases:
            return
        stmt = self._stmt
        anchor = stmt if stmt is not None else receiver
        own_label = f"param:{name}"
        for label in sorted(value.aliases):
            if label.startswith("param:") and label != own_label:
                if value.is_view or value.is_array:
                    param = label.split(":", 1)[1]
                    self._emit(
                        "alias-write", anchor,
                        f"{how} to `{name}` mutates caller data: it may "
                        f"alias parameter `{param}` (view chain); copy "
                        "before writing, or make the out-parameter "
                        "contract explicit",
                    )
                    return
        if not value.is_view:
            return
        alloc_labels = {
            label for label in value.aliases if label.startswith("alloc:")
        }
        if not alloc_labels:
            return
        lineno = getattr(anchor, "lineno", 0)
        for other, other_value in sorted(env.items()):
            if other == name:
                continue
            if not (alloc_labels & other_value.aliases):
                continue
            if self._used_after(other, lineno):
                self._emit(
                    "alias-write", anchor,
                    f"{how} to `{name}` also changes `{other}` — both may "
                    "share one buffer (view of the same allocation); "
                    "copy before writing",
                )
                return

    # -- expression evaluation ----------------------------------------
    def _eval(self, expr: ast.expr, env: Env) -> ArrayValue:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _TOP_VALUE)
        if isinstance(expr, ast.Constant):
            return self._constant(expr.value)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            return self._binop_value(expr, expr.op, left, right)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env)
            if isinstance(expr.op, ast.Not):
                return ArrayValue(dtype="bool", shape=operand.shape)
            return replace(operand, aliases=frozenset(), is_view=False)
        if isinstance(expr, ast.Compare):
            return self._compare(expr, env)
        if isinstance(expr, ast.BoolOp):
            value = self._eval(expr.values[0], env)
            for sub in expr.values[1:]:
                value = value.join(self._eval(sub, env))
            return value
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, env)
            return self._eval(expr.body, env).join(
                self._eval(expr.orelse, env)
            )
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                self._eval(elt, env)
            return _TOP_VALUE
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env)
        return _TOP_VALUE

    @staticmethod
    def _constant(value) -> ArrayValue:
        if isinstance(value, bool):
            return ArrayValue(dtype="pyint", shape=())
        if isinstance(value, int):
            return _PYINT
        if isinstance(value, float):
            return _PYFLOAT
        if isinstance(value, complex):
            return ArrayValue(dtype="complex128", shape=())
        return _TOP_VALUE

    def _binop_value(
        self, node: ast.AST, op: ast.operator,
        left: ArrayValue, right: ArrayValue,
    ) -> ArrayValue:
        dtype = promote(left.dtype, right.dtype)
        shape, mutual = broadcast_shapes(left.shape, right.shape)
        if mutual and not (left.expanded or right.expanded):
            self._emit(
                "broadcast", node,
                f"operands of shape {format_shape(left.shape)} and "
                f"{format_shape(right.shape)} broadcast by stretching "
                f"*both* sides to {format_shape(shape)} — likely an "
                "unintended outer product; insert the axis explicitly "
                "(`[:, None]`) if the blowup is intended",
            )
        is_array = left.is_array or right.is_array
        if isinstance(op, ast.Div):
            if _is_int(left.dtype) and _is_int(right.dtype) and is_array:
                self._emit(
                    "narrow", node,
                    "true division of two integer arrays silently yields "
                    "float64; use `//` for integer division or cast one "
                    "operand explicitly to make the dtype change visible",
                )
            dtype = (
                "float64"
                if _is_int(dtype) or dtype == "bool"
                else dtype
            )
        elif isinstance(op, (ast.Mult, ast.Add, ast.Pow)):
            if (
                is_array
                and _is_int(left.dtype)
                and _is_int(right.dtype)
                and dtype in _PLATFORM_INTS
            ):
                kind = "product" if not isinstance(op, ast.Add) else "sum"
                self._emit(
                    "int-overflow", node,
                    f"{kind} of platform-int values stays int32/intp and "
                    "can overflow at scale (composite grid keys exceed "
                    "2**31 beyond ~10^5 cells per side); cast with "
                    "np.int64 before the arithmetic",
                )
        return ArrayValue(
            dtype=dtype, shape=shape, is_array=is_array,
            expanded=left.expanded and right.expanded,
        )

    def _compare(self, expr: ast.Compare, env: Env) -> ArrayValue:
        left = self._eval(expr.left, env)
        result = ArrayValue(dtype="bool", shape=left.shape)
        for comparator in expr.comparators:
            right = self._eval(comparator, env)
            shape, mutual = broadcast_shapes(left.shape, right.shape)
            if mutual and not (left.expanded or right.expanded):
                self._emit(
                    "broadcast", expr,
                    f"comparison of shapes {format_shape(left.shape)} and "
                    f"{format_shape(right.shape)} broadcasts by "
                    "stretching both sides — likely an unintended outer "
                    "product; insert the axis explicitly if intended",
                )
            result = ArrayValue(
                dtype="bool", shape=shape,
                is_array=left.is_array or right.is_array,
            )
            left = right
        return result

    # -- attribute / subscript ----------------------------------------
    def _eval_attribute(self, expr: ast.Attribute, env: Env) -> ArrayValue:
        base = self._eval(expr.value, env)
        attr = expr.attr
        if attr == "T":
            shape = (
                tuple(reversed(base.shape)) if base.shape is not None else None
            )
            return replace(base, shape=shape, is_view=True)
        if attr in ("real", "imag", "flat"):
            return replace(base, shape=None, is_view=True)
        if attr in ("size", "ndim", "itemsize", "nbytes"):
            return _PYINT
        if attr in ("dtype", "shape"):
            return _TOP_VALUE
        # Unresolved attribute loads (``self.clock``): unknown state with
        # a deterministic label, so derived views keep their provenance.
        dotted: list[str] = [attr]
        node: ast.expr = expr.value
        while isinstance(node, ast.Attribute):
            dotted.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            dotted.append(node.id)
            label = "attr:" + ".".join(reversed(dotted))
            return ArrayValue(aliases=frozenset({label}))
        return _TOP_VALUE

    def _eval_subscript(self, expr: ast.Subscript, env: Env) -> ArrayValue:
        base = self._eval(expr.value, env)
        if not (base.is_array or base.aliases):
            return _TOP_VALUE
        index = expr.slice
        parts = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        has_newaxis = any(
            isinstance(p, ast.Constant) and p.value is None for p in parts
        )
        advanced = False
        for part in parts:
            if isinstance(part, ast.Slice):
                continue
            if isinstance(part, ast.Constant) and (
                part.value is None
                or isinstance(part.value, int)
                or part.value is Ellipsis
            ):
                continue
            self._eval(part, env)
            advanced = True
        if advanced:
            # Advanced (integer-array / boolean-mask) indexing copies.
            return ArrayValue(
                dtype=base.dtype, shape=None,
                is_array=True,
            )
        shape = self._slice_shape(base.shape, parts)
        return ArrayValue(
            dtype=base.dtype,
            shape=shape,
            aliases=base.aliases,
            expanded=base.expanded or has_newaxis,
            is_array=True,
            is_view=True,
        )

    @staticmethod
    def _slice_shape(shape: tuple | None, parts: list) -> tuple | None:
        if shape is None:
            return None
        out: list = []
        axis = 0
        for part in parts:
            if isinstance(part, ast.Constant) and part.value is None:
                out.append(1)
                continue
            if isinstance(part, ast.Constant) and part.value is Ellipsis:
                return None
            if axis >= len(shape):
                return None
            if isinstance(part, ast.Slice):
                full = (
                    part.lower is None
                    and part.upper is None
                    and part.step is None
                )
                out.append(shape[axis] if full else None)
                axis += 1
            else:  # integer index: the axis disappears
                axis += 1
        out.extend(shape[axis:])
        return tuple(out)

    # -- calls ---------------------------------------------------------
    def _dtype_from_expr(self, expr: ast.expr | None) -> str | None:
        if expr is None:
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return _STRING_DTYPES.get(expr.value)
        resolved = self.ctx.resolve_call_name(expr)
        if resolved is not None:
            return _NUMPY_DTYPE_NAMES.get(resolved)
        return None

    def _dim_from_expr(self, expr: ast.expr) -> "int | str | None":
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return int(expr.value)
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            names = []
            node: ast.expr = expr
            while isinstance(node, ast.Attribute):
                names.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                names.append(node.id)
                return ".".join(reversed(names))
            return None
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "len"
            and len(expr.args) == 1
        ):
            inner = self._dim_from_expr(expr.args[0])
            return f"len({inner})" if inner is not None else None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            base = const = None
            if _positive_int(expr.right):
                base, const = expr.left, expr.right
            elif _positive_int(expr.left):
                base, const = expr.right, expr.left
            if base is not None and const is not None:
                inner = self._dim_from_expr(base)
                if inner is not None:
                    symbol = f"{inner}+{const.value}"  # type: ignore[union-attr]
                    # n >= 0 for any size expression, so n + c >= 1.
                    self._positive.add(symbol)
                    return symbol
        return None

    def _shape_from_expr(
        self, expr: ast.expr | None, env: Env
    ) -> tuple | None:
        if expr is None:
            return None
        if isinstance(expr, (ast.Tuple, ast.List)):
            return tuple(self._dim_from_expr(e) for e in expr.elts)
        if isinstance(expr, ast.Name):
            bound = env.get(expr.id)
            if bound is not None and bound.shape not in ((), None):
                return None  # a bound array/tuple, not a scalar size
            dim = self._dim_from_expr(expr)
            return (dim,) if dim is not None else None
        dim = self._dim_from_expr(expr)
        return (dim,) if dim is not None else None

    @staticmethod
    def _keyword(call: ast.Call, name: str) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _alloc_value(
        self, call: ast.Call, dtype: str | None, shape: tuple | None,
        expanded: bool = False,
    ) -> ArrayValue:
        label = f"alloc:{call.lineno}:{call.col_offset}"
        return ArrayValue(
            dtype=dtype, shape=shape, aliases=frozenset({label}),
            expanded=expanded, is_array=True,
        )

    def _eval_call(self, call: ast.Call, env: Env) -> ArrayValue:
        func = call.func
        resolved = self.ctx.resolve_call_name(func)
        if resolved is not None and resolved.startswith("numpy."):
            value = self._numpy_call(call, resolved, env)
            if value is not None:
                return value
        if isinstance(func, ast.Attribute):
            value = self._method_call(call, func, env)
            if value is not None:
                return value
        if resolved == "len" or resolved == "builtins.len":
            self._eval(call.args[0], env) if call.args else None
            return _PYINT
        if resolved in ("float", "builtins.float"):
            for arg in call.args:
                self._eval(arg, env)
            return _PYFLOAT
        if resolved in ("int", "builtins.int", "abs", "builtins.abs"):
            for arg in call.args:
                self._eval(arg, env)
            return _PYINT if resolved.endswith("int") else _TOP_VALUE
        # Project functions: inter-procedural summary through the
        # call graph; everything else is opaque.
        for arg in call.args:
            self._eval(arg, env)
        for kw in call.keywords:
            self._eval(kw.value, env)
        summary = self._project_summary(call)
        if summary is not None:
            aliases: frozenset = frozenset()
            for index in summary.param_aliases:
                if index < len(call.args):
                    aliases |= self._eval(call.args[index], env).aliases
            return ArrayValue(
                dtype=summary.dtype,
                shape=summary.shape,
                aliases=aliases,
                is_array=summary.is_array,
                is_view=summary.is_view and bool(aliases),
            )
        return _TOP_VALUE

    def _project_summary(self, call: ast.Call) -> FunctionSummary | None:
        graph = CallGraph.of(self.analysis.project)
        info = graph.resolve_callable(
            call.func, self.record, self.info.class_qual, None,
            self.info.qualname,
        )
        if info is None:
            return None
        return self.analysis.summary_of(info)

    # -- numpy namespace ----------------------------------------------
    def _numpy_call(
        self, call: ast.Call, resolved: str, env: Env
    ) -> ArrayValue | None:
        name = resolved[len("numpy."):].rsplit(".", 1)[-1]
        dtype_kw = self._dtype_from_expr(self._keyword(call, "dtype"))
        args = call.args

        if name in ("zeros", "ones", "empty"):
            shape = self._shape_from_expr(args[0] if args else None, env)
            return self._alloc_value(call, dtype_kw or "float64", shape)
        if name == "full":
            fill = self._eval(args[1], env) if len(args) > 1 else _PYFLOAT
            dtype = dtype_kw or {
                "pyint": "intp", "pyfloat": "float64",
            }.get(fill.dtype or "", fill.dtype)
            shape = self._shape_from_expr(args[0] if args else None, env)
            return self._alloc_value(call, dtype, shape)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            source = self._eval(args[0], env) if args else _TOP_VALUE
            if name == "full_like" and len(args) > 1:
                self._eval(args[1], env)
            dtype = dtype_kw or source.dtype
            self._check_narrowing(call, source.dtype, dtype_kw, f"np.{name}")
            return self._alloc_value(call, dtype, source.shape)
        if name in ("asarray", "ascontiguousarray", "asfarray"):
            source = self._eval(args[0], env) if args else _TOP_VALUE
            dtype = dtype_kw or source.dtype
            if dtype in _WEAK_DTYPES:
                dtype = "intp" if dtype == "pyint" else "float64"
            self._check_narrowing(call, source.dtype, dtype_kw, f"np.{name}")
            return ArrayValue(
                dtype=dtype, shape=source.shape, aliases=source.aliases,
                expanded=source.expanded, is_array=True,
                is_view=bool(source.aliases),
            )
        if name in ("array", "copy"):
            source = self._eval(args[0], env) if args else _TOP_VALUE
            dtype = dtype_kw or source.dtype
            if dtype in _WEAK_DTYPES:
                dtype = "intp" if dtype == "pyint" else "float64"
            self._check_narrowing(call, source.dtype, dtype_kw, f"np.{name}")
            return self._alloc_value(call, dtype, source.shape)
        if name == "arange":
            if dtype_kw is not None:
                dtype = dtype_kw
            elif any(
                isinstance(a, ast.Constant) and isinstance(a.value, float)
                for a in args
            ):
                dtype = "float64"
            else:
                dtype = "intp"  # the platform-int default RL-N005 polices
            shape = None
            if len(args) == 1:
                dim = self._dim_from_expr(args[0])
                shape = (dim,) if dim is not None else None
                self._eval(args[0], env)
            else:
                for arg in args:
                    self._eval(arg, env)
            return self._alloc_value(call, dtype, shape)
        if name in ("linspace", "logspace"):
            for arg in args:
                self._eval(arg, env)
            dim = (
                self._dim_from_expr(args[2]) if len(args) > 2 else 50
            )
            return self._alloc_value(call, "float64", (dim,))
        if name == "where":
            return self._numpy_where(call, env)
        if name in _BINARY_UFUNCS and len(args) >= 2:
            left = self._eval(args[0], env)
            right = self._eval(args[1], env)
            op: ast.operator
            if name in ("multiply", "power"):
                op = ast.Mult()
            elif name == "add":
                op = ast.Add()
            elif name in ("divide", "true_divide"):
                op = ast.Div()
            else:
                op = ast.Sub()
            value = self._binop_value(call, op, left, right)
            if name in _FRESH_FLOAT_FUNCS:
                value = replace(value, dtype=promote(value.dtype, "pyfloat"))
            out = self._keyword(call, "out")
            if out is not None:
                self._check_mutation(out, env, "ufunc out= write")
                out_value = self._eval(out, env)
                value = replace(
                    value, aliases=out_value.aliases,
                    is_view=out_value.is_view,
                )
            return value
        if name in _EMPTY_UNSAFE_REDUCTIONS and args:
            return self._reduction(call, name, args[0], env)
        if name in ("sum", "prod", "cumsum", "cumprod", "count_nonzero"):
            source = self._eval(args[0], env) if args else _TOP_VALUE
            dtype = source.dtype
            if name in ("sum", "prod", "cumsum", "cumprod"):
                # Reductions widen platform ints to the accumulator type.
                dtype = "intp" if dtype == "bool" else dtype
            if name == "count_nonzero":
                dtype = "intp"
            return ArrayValue(dtype=dtype, shape=None, is_array=True)
        if name in _VIEW_FUNCS and args:
            source = self._eval(args[0], env)
            return replace(
                source, shape=None, is_view=bool(source.aliases),
            )
        if name == "reshape" and len(args) >= 2:
            source = self._eval(args[0], env)
            return self._reshape(source, args[1], env)
        if name in _FRESH_FLOAT_FUNCS and args:
            source = self._eval(args[0], env)
            dtype = promote(source.dtype, "pyfloat")
            if name in ("floor", "ceil", "round", "abs", "absolute"):
                dtype = source.dtype if source.dtype != DTYPE_TOP else DTYPE_TOP
            return ArrayValue(
                dtype=dtype, shape=source.shape, is_array=True,
            )
        if name in (
            "concatenate", "append", "stack", "vstack", "hstack",
            "column_stack", "repeat", "tile", "sort", "unique", "diff",
            "flatnonzero", "searchsorted", "argsort", "lexsort", "nonzero",
            "cumsum", "floor_divide", "dot", "matmul", "einsum", "interp",
        ):
            dtype: str | None = DTYPE_TOP
            for arg in args:
                value = self._eval(arg, env)
                dtype = dtype_join(
                    dtype if dtype != DTYPE_TOP else None, value.dtype
                )
            if name in (
                "argsort", "searchsorted", "flatnonzero", "nonzero",
                "lexsort",
            ):
                dtype = "intp"  # index-producing: platform int
            return ArrayValue(dtype=dtype, shape=None, is_array=True)
        if name in ("float32", "float16", "int32", "int16", "int8"):
            source = self._eval(args[0], env) if args else _TOP_VALUE
            target = _STRING_DTYPES.get(name, name)
            self._check_narrowing(call, source.dtype, target, f"np.{name}")
            return ArrayValue(
                dtype=target, shape=source.shape, is_array=source.is_array,
            )
        if name in ("float64", "int64", "intp", "bool_"):
            source = self._eval(args[0], env) if args else _TOP_VALUE
            return ArrayValue(
                dtype=_STRING_DTYPES.get(name, "bool"),
                shape=source.shape, is_array=source.is_array,
            )
        return None

    def _numpy_where(self, call: ast.Call, env: Env) -> ArrayValue:
        args = call.args
        cond = self._eval(args[0], env) if args else _TOP_VALUE
        if len(args) < 3:
            return ArrayValue(dtype="intp", shape=None, is_array=True)
        a = self._eval(args[1], env)
        b = self._eval(args[2], env)
        branch_dtypes = {a.dtype, b.dtype}
        if branch_dtypes == {"float32", "float64"}:
            self._emit(
                "narrow", call,
                "np.where mixes float32 and float64 branches — the "
                "float32 side already lost precision upstream and the "
                "result dtype depends on it; unify both branches to "
                "float64 explicitly",
            )
        shape, mutual = broadcast_shapes(a.shape, b.shape)
        if mutual and not (a.expanded or b.expanded):
            self._emit(
                "broadcast", call,
                f"np.where branches of shape {format_shape(a.shape)} and "
                f"{format_shape(b.shape)} broadcast by stretching both "
                "sides — likely an unintended outer product",
            )
        shape, _ = broadcast_shapes(shape, cond.shape)
        return ArrayValue(
            dtype=promote(a.dtype, b.dtype), shape=shape, is_array=True,
        )

    def _reshape(
        self, source: ArrayValue, shape_arg: ast.expr, env: Env
    ) -> ArrayValue:
        shape = self._shape_from_expr(shape_arg, env)
        if shape is not None:
            shape = tuple(None if d == -1 else d for d in shape)
        expanded = source.expanded or bool(
            shape and any(d == 1 for d in shape)
        )
        return ArrayValue(
            dtype=source.dtype, shape=shape, aliases=source.aliases,
            expanded=expanded, is_array=True,
            is_view=bool(source.aliases),
        )

    def _check_narrowing(
        self, node: ast.AST, source: str | None, target: str | None,
        how: str,
    ) -> None:
        if target is None:
            return
        if target in _NARROW_FLOATS:
            if source in ("float64", "complex128", DTYPE_TOP, None):
                self._emit(
                    "narrow", node,
                    f"`{how}` narrows a float64-carrying value to "
                    f"{target}; the bit-for-bit kernels require float64 "
                    "end to end — keep the wide dtype (or isolate the "
                    "narrow copy behind an explicit boundary)",
                )
        elif target == "int32" and source in ("int64", DTYPE_TOP, None):
            self._emit(
                "narrow", node,
                f"`{how}` narrows 64-bit integers to int32; composite "
                "grid keys and node ids overflow int32 at scale — keep "
                "np.int64",
            )

    # -- methods -------------------------------------------------------
    def _method_call(
        self, call: ast.Call, func: ast.Attribute, env: Env
    ) -> ArrayValue | None:
        receiver = self._eval(func.value, env)
        method = func.attr
        arrayish = receiver.is_array or bool(receiver.aliases)
        if method == "astype" and call.args:
            target = self._dtype_from_expr(call.args[0])
            self._check_narrowing(
                call, receiver.dtype, target, f".astype({ast.dump(call.args[0]) if target is None else target})",
            )
            return ArrayValue(
                dtype=target or DTYPE_TOP, shape=receiver.shape,
                is_array=True,
            )
        if method == "copy" and arrayish:
            return self._alloc_value(
                call, receiver.dtype, receiver.shape, receiver.expanded
            )
        if method == "reshape" and call.args and arrayish:
            shape_arg: ast.expr
            if len(call.args) == 1:
                shape_arg = call.args[0]
            else:
                shape_arg = ast.Tuple(elts=list(call.args), ctx=ast.Load())
            return self._reshape(receiver, shape_arg, env)
        if method in ("ravel", "view", "swapaxes", "transpose") and arrayish:
            return replace(receiver, shape=None, is_view=True)
        if method == "flatten" and arrayish:
            return self._alloc_value(call, receiver.dtype, None)
        if method in _INPLACE_METHODS and arrayish:
            if isinstance(func.value, ast.Name):
                self._check_mutation(
                    func.value, env, f"in-place `.{method}()`"
                )
            for arg in call.args:
                self._eval(arg, env)
            return replace(receiver, shape=receiver.shape)
        if method in _EMPTY_UNSAFE_REDUCTIONS and arrayish:
            return self._reduction(call, method, func.value, env)
        if method in ("sum", "prod") and arrayish:
            return ArrayValue(
                dtype=receiver.dtype, shape=None, is_array=True,
            )
        if method in ("any", "all") and arrayish:
            return ArrayValue(dtype="bool", shape=())
        if method == "tolist":
            return _TOP_VALUE
        if method == "item":
            return ArrayValue(dtype=receiver.dtype, shape=())
        return None

    # -- reductions (RL-N004) -----------------------------------------
    def _reduction(
        self, call: ast.Call, name: str, operand_expr: ast.expr, env: Env
    ) -> ArrayValue:
        operand = self._eval(operand_expr, env)
        axis_expr = self._keyword(call, "axis")
        if axis_expr is None and call.args:
            # ``np.min(x, 0)`` carries the axis in args[1]; the method
            # form ``x.min(0)`` carries it in args[0].
            if call.args[0] is operand_expr:
                axis_expr = call.args[1] if len(call.args) > 1 else None
            else:
                axis_expr = call.args[0]
        axis = (
            axis_expr.value
            if isinstance(axis_expr, ast.Constant)
            and isinstance(axis_expr.value, int)
            else None
        )
        keepdims_expr = self._keyword(call, "keepdims")
        keepdims = (
            isinstance(keepdims_expr, ast.Constant)
            and keepdims_expr.value is True
        )
        self._check_empty_reduction(call, name, operand_expr, operand, axis)
        if name in ("argmin", "argmax"):
            dtype: str | None = "intp"
        elif name in ("mean", "median", "std", "var", "average"):
            dtype = (
                operand.dtype
                if operand.dtype in ("float32", "complex128")
                else "float64"
            )
        else:
            dtype = operand.dtype
        shape: tuple | None
        if operand.shape is None:
            shape = None if axis is not None or keepdims else ()
        elif axis is None and not keepdims:
            shape = ()
        elif axis is not None and axis < len(operand.shape):
            dims = list(operand.shape)
            if keepdims:
                dims[axis] = 1
            else:
                del dims[axis]
            shape = tuple(dims)
        else:
            shape = None
        return ArrayValue(
            dtype=dtype, shape=shape,
            is_array=shape != (),
            expanded=keepdims,
        )

    def _reduced_dim_risky(
        self, operand: ArrayValue, axis: int | None
    ) -> bool | None:
        """True = provably riskable dim, None = unknown shape, False = safe."""
        if operand.shape is None:
            return None
        dims = (
            [operand.shape[axis]]
            if axis is not None and axis < len(operand.shape)
            else list(operand.shape)
        )
        if not dims:
            return False  # scalar: reductions are identity
        for dim in dims:
            if dim == 0:
                return True
            if dim is None:
                return None
            if isinstance(dim, str) and dim not in self._positive:
                return True
            if isinstance(dim, int) and dim >= 1:
                continue
        return False

    def _check_empty_reduction(
        self, call: ast.Call, name: str, operand_expr: ast.expr,
        operand: ArrayValue, axis: int | None,
    ) -> None:
        risky = self._reduced_dim_risky(operand, axis)
        if risky is False:
            return
        if risky is None:
            # Unknown shape: only externally-sourced data (parameters,
            # object state) is worth reporting — locals of unknown shape
            # from arbitrary arithmetic would drown the rule in noise.
            sourced = any(
                label.startswith(("param:", "attr:"))
                for label in operand.aliases
            )
            if not sourced:
                return
        guard_names = _names_in(operand_expr)
        if self._guarded(guard_names):
            return
        self._emit(
            "empty-reduce", call,
            f"`{name}` over a possibly-empty array "
            f"(shape {format_shape(operand.shape)}): an empty operand "
            "raises ValueError at runtime; guard with a size check "
            "(`if len(x) == 0: ...` / `.size`) that dominates this "
            "reduction",
        )


# ----------------------------------------------------------------------
# Project-level driver
# ----------------------------------------------------------------------
class ArrayAnalysis:
    """Per-project array-semantics analysis, shared by the RL-N rules.

    Built once per lint run (memoised on the
    :class:`~repro.lint.project.ProjectModel` like
    :meth:`~repro.lint.callgraph.CallGraph.of`); events are computed
    lazily per module so ``--select`` runs that skip the pack pay
    nothing, and function summaries are cached with an in-progress
    sentinel so call cycles terminate at top.
    """

    #: Sentinel marking a summary currently being computed (call cycle).
    _IN_PROGRESS = object()

    def __init__(self, project: "ProjectModel") -> None:
        self.project = project
        self._events: dict[str, list[ArrayEvent]] = {}
        self._summaries: dict[str, object] = {}

    @classmethod
    def of(cls, project: "ProjectModel") -> "ArrayAnalysis":
        cached = getattr(project, "_array_analysis", None)
        if cached is None:
            cached = cls(project)
            project._array_analysis = cached
        return cached

    # -- gating --------------------------------------------------------
    @staticmethod
    def _numpy_names(record: "ModuleRecord") -> set[str]:
        names = {
            alias
            for alias, module in record.ctx.module_aliases.items()
            if module == "numpy" or module.startswith("numpy.")
        }
        names |= {
            bound
            for bound, (module, _orig) in record.ctx.imported_names.items()
            if module == "numpy" or module.startswith("numpy.")
        }
        return names

    def _function_uses_numpy(
        self, info: FunctionInfo, numpy_names: set[str]
    ) -> bool:
        for node in info.scope_nodes:
            if isinstance(node, ast.Name) and node.id in numpy_names:
                return True
        for param in [
            *info.node.args.posonlyargs, *info.node.args.args,
            *info.node.args.kwonlyargs,
        ]:
            annotation = param.annotation
            if annotation is not None:
                resolved = info.record.ctx.resolve_call_name(annotation)
                if resolved is not None and resolved.startswith("numpy."):
                    return True
        return False

    # -- events --------------------------------------------------------
    def events(self, record: "ModuleRecord") -> list[ArrayEvent]:
        """All array-semantics events of one module (computed lazily)."""
        cached = self._events.get(record.name)
        if cached is not None:
            return cached
        events: list[ArrayEvent] = []
        numpy_names = self._numpy_names(record)
        if numpy_names:
            graph = CallGraph.of(self.project)
            infos = sorted(
                (
                    info
                    for info in graph.functions.values()
                    if info.record is record
                ),
                key=lambda info: info.key,
            )
            for info in infos:
                if not self._function_uses_numpy(info, numpy_names):
                    continue
                events.extend(self._function_events(info))
        self._events[record.name] = events
        return events

    def _function_events(self, info: FunctionInfo) -> list[ArrayEvent]:
        interp = _Interp(self, info)
        cfg = build_cfg(info.node)
        in_sets, _out = cfg.forward_may(interp.transfer, init=interp.seed_env())
        # Reporting pass: one evaluation per statement with its final
        # in-state, so each hazard is emitted exactly once per site.
        interp.reporting = True
        for node in cfg.statement_nodes():
            if node.stmt is not None:
                interp.transfer(node.stmt, in_sets[node.id])
        return interp.events

    # -- summaries -----------------------------------------------------
    def summary_of(self, info: FunctionInfo) -> FunctionSummary:
        """Return-value summary of one project function (cached)."""
        cached = self._summaries.get(info.key)
        if cached is self._IN_PROGRESS:
            return _TOP_SUMMARY  # call cycle: converge at top
        if cached is not None:
            return cached  # type: ignore[return-value]
        self._summaries[info.key] = self._IN_PROGRESS
        try:
            summary = self._compute_summary(info)
        finally:
            self._summaries.pop(info.key, None)
        self._summaries[info.key] = summary
        return summary

    def _compute_summary(self, info: FunctionInfo) -> FunctionSummary:
        interp = _Interp(self, info)
        cfg = build_cfg(info.node)
        in_sets, _out = cfg.forward_may(interp.transfer, init=interp.seed_env())
        args = info.node.args
        param_names = [
            param.arg
            for param in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        result: ArrayValue | None = None
        for node in cfg.statement_nodes():
            stmt = node.stmt
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            env = in_sets[node.id]
            if not isinstance(env, Env):
                env = Env()
            interp._stmt = stmt
            value = interp._eval(stmt.value, env)
            result = value if result is None else result.join(value)
        if result is None:
            return _TOP_SUMMARY
        param_aliases = tuple(
            index
            for index, name in enumerate(param_names)
            if f"param:{name}" in result.aliases
        )
        return FunctionSummary(
            dtype=result.dtype,
            shape=_export_shape(result.shape),
            param_aliases=param_aliases,
            is_array=result.is_array,
            is_view=result.is_view,
        )


def iter_module_events(
    project: "ProjectModel", record: "ModuleRecord", kind: str
) -> Iterator[ArrayEvent]:
    """Events of one kind for one module — the rule-facing entry point."""
    for event in ArrayAnalysis.of(project).events(record):
        if event.kind == kind:
            yield event
