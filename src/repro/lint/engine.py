"""The reprolint engine: one AST walk per module, rules ride along.

The engine parses a module, tokenizes it once to collect
``# reprolint: disable=...`` suppression comments, then performs a single
:class:`ast.NodeVisitor` pass.  At each node it first updates the shared
:class:`ModuleContext` bookkeeping (import aliases, lexical scope stack) and
then dispatches the node to every registered rule subscribed to that node
type.  Findings landing on a suppressed line are dropped at collection
time, so reporters never see them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from repro.lint.findings import Finding, sort_findings
from repro.lint.registry import Rule, all_rules

__all__ = [
    "LintEngine",
    "ModuleContext",
    "PARSE_ERROR_ID",
    "collect_suppressions",
    "lint_paths",
    "lint_source",
]

#: Pseudo rule id used for files that fail to parse.
PARSE_ERROR_ID = "RL-E001"

_SUPPRESS_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable(?P<next>-next)?=(?P<ids>[A-Za-z0-9_,\- ]+)"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line.

    ``# reprolint: disable=RL-XXXX[,RL-YYYY]`` suppresses on the comment's
    own line; ``disable-next=`` suppresses on the following line (for
    statements too long to carry a trailing comment).  The special token
    ``all`` suppresses every rule.  Comments are found with
    :mod:`tokenize`, so a ``#`` inside a string literal is never mistaken
    for a suppression.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_PATTERN.search(tok.string)
            if match is None:
                continue
            ids = {
                part.strip()
                for part in match.group("ids").split(",")
                if part.strip()
            }
            if ids:
                line = tok.start[0] + (1 if match.group("next") else 0)
                suppressions.setdefault(line, set()).update(ids)
    except tokenize.TokenError:
        # Unterminated constructs: the ast parse will report the real error.
        pass
    return suppressions


class ModuleContext:
    """Everything rules may want to know about the module being linted."""

    def __init__(self, path: str, source: str) -> None:
        self.path = str(PurePosixPath(Path(path).as_posix()))
        self.source = source
        self._parts = PurePosixPath(self.path).parts
        self._stem = PurePosixPath(self.path).stem
        #: ``import numpy as np`` -> {"np": "numpy"}
        self.module_aliases: dict[str, str] = {}
        #: ``from numpy.random import default_rng as mk`` ->
        #: {"mk": ("numpy.random", "default_rng")}
        self.imported_names: dict[str, tuple[str, str]] = {}
        #: Enclosing FunctionDef/AsyncFunctionDef/ClassDef/Lambda nodes.
        self.scope_stack: list[ast.AST] = []

    # ------------------------------------------------------------------
    # Path classification
    # ------------------------------------------------------------------
    @property
    def is_test_code(self) -> bool:
        """Test/benchmark modules are exempt from simulation-only rules."""
        in_test_tree = any(p in ("tests", "benchmarks") for p in self._parts)
        test_file = (
            self._stem.startswith(("test_", "bench_")) or self._stem == "conftest"
        )
        return in_test_tree or test_file

    def has_dir(self, *names: str) -> bool:
        """Whether any path component equals one of ``names``."""
        return any(p in names for p in self._parts[:-1])

    def path_endswith(self, suffix: str) -> bool:
        """Posix-style suffix match on the module path."""
        return self.path.endswith(suffix)

    @property
    def module_stem(self) -> str:
        """Filename without extension (``engine`` for ``lint/engine.py``)."""
        return self._stem

    # ------------------------------------------------------------------
    # Name resolution across imports
    # ------------------------------------------------------------------
    def record_imports(self, node: ast.AST) -> None:
        """Track ``import``/``from ... import`` bindings as they are met."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                self.module_aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                self.imported_names[bound] = (node.module, alias.name)

    def resolve_call_name(self, func: ast.AST) -> str | None:
        """Fully-qualified dotted name of a call target, if resolvable.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``"numpy.random.rand"``; a bare name imported via
        ``from numpy.random import rand`` resolves the same way.  Returns
        ``None`` for dynamic targets (subscripts, call results, ...).
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.module_aliases:
            parts[0] = self.module_aliases[root]
        elif root in self.imported_names:
            module, original = self.imported_names[root]
            parts[0:1] = [module, original]
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------
    @property
    def enclosing_function(self) -> ast.AST | None:
        """Innermost enclosing function/lambda node, if any."""
        for frame in reversed(self.scope_stack):
            if isinstance(frame, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return frame
        return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


class _Dispatcher(ast.NodeVisitor):
    """Single-pass visitor feeding each node to the subscribed rules."""

    def __init__(self, ctx: ModuleContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.findings: list[tuple[ast.AST, str, str]] = []
        self._by_type: dict[type, list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)

    def visit(self, node: ast.AST) -> None:
        self.ctx.record_imports(node)
        for rule in self._by_type.get(type(node), ()):
            for offending, message in rule.check(node, self.ctx):
                self.findings.append((offending, rule.rule_id, message))
        if isinstance(node, _SCOPE_NODES):
            self.ctx.scope_stack.append(node)
            try:
                self.generic_visit(node)
            finally:
                self.ctx.scope_stack.pop()
        else:
            self.generic_visit(node)


class LintEngine:
    """Runs the registered rules over sources, files, and trees."""

    def __init__(self, rules: Sequence[type[Rule]] | None = None) -> None:
        self._rule_classes = tuple(rules) if rules is not None else all_rules()

    @property
    def rule_classes(self) -> tuple[type[Rule], ...]:
        """The rule classes this engine runs."""
        return self._rule_classes

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one module given as a source string."""
        ctx = ModuleContext(path, source)
        try:
            tree = ast.parse(source, filename=ctx.path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=ctx.path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        suppressions = collect_suppressions(source)
        active = [cls() for cls in self._rule_classes]
        active = [rule for rule in active if rule.applies_to(ctx)]
        dispatcher = _Dispatcher(ctx, active)
        dispatcher.visit(tree)

        findings: list[Finding] = []
        for node, rule_id, message in dispatcher.findings:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            suppressed = suppressions.get(line, ())
            if rule_id in suppressed or "all" in suppressed:
                continue
            findings.append(
                Finding(
                    path=ctx.path, line=line, col=col,
                    rule_id=rule_id, message=message,
                )
            )
        return sort_findings(findings)

    def lint_file(self, path: str | Path) -> list[Finding]:
        """Lint one file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and directory trees; directories are walked for .py."""
        findings: list[Finding] = []
        for target in paths:
            target = Path(target)
            if target.is_dir():
                for file in sorted(target.rglob("*.py")):
                    if any(part in _SKIP_DIR_NAMES or part.endswith(".egg-info")
                           for part in file.parts):
                        continue
                    findings.extend(self.lint_file(file))
            elif target.is_file():
                findings.extend(self.lint_file(target))
            else:
                raise FileNotFoundError(f"no such file or directory: {target}")
        return sort_findings(findings)


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint a source string with all registered rules."""
    return LintEngine().lint_source(source, path)


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint files/trees with all registered rules."""
    return LintEngine().lint_paths(paths)
