"""The reprolint engine: per-file AST walks plus whole-project passes.

Per file, the engine parses the module, tokenizes it once to collect
``# reprolint: disable=...`` suppression comments, then performs a single
:class:`ast.NodeVisitor` pass.  At each node it first updates the shared
:class:`ModuleContext` bookkeeping (import aliases, lexical scope stack)
and then dispatches the node to every registered rule subscribed to that
node type.

Across files, the engine builds one :class:`~repro.lint.project.ProjectModel`
and runs the registered :class:`~repro.lint.registry.ProjectRule` passes
(:mod:`repro.lint.flow`) over it, so violations spanning import and call
boundaries are caught too.  Findings landing on a suppressed line — any
physical line of the offending statement may carry the comment — are
dropped at collection time, so reporters never see them.

The per-file pass is embarrassingly parallel and content-addressed:
``lint_paths``/``lint_files`` accept a :class:`~repro.lint.cache.LintCache`
and a ``jobs`` count, mirroring the campaign runner's process-pool
executor (fork start method where available, serial fallback on any pool
breakage).
"""

from __future__ import annotations

import ast
import io
import multiprocessing
import re
import tokenize
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from pathlib import Path, PurePosixPath
from time import perf_counter
from typing import Iterable, Sequence

from repro.lint.findings import Finding, sort_findings
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
)

__all__ = [
    "LintEngine",
    "ModuleContext",
    "PARSE_ERROR_ID",
    "collect_suppressions",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "resolve_lint_files",
]

#: Pseudo rule id used for files that fail to parse.
PARSE_ERROR_ID = "RL-E001"

_SUPPRESS_PATTERN = re.compile(
    r"#\s*reprolint:\s*"
    r"(?:disable(?P<next>-next)?=(?P<ids>[A-Za-z0-9_,\- ]+)"
    r"|ignore(?P<bracket_next>-next)?\[(?P<bracket_ids>[A-Za-z0-9_,\- ]+)\])"
)

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", "build", "dist"}


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed on that line.

    ``# reprolint: disable=RL-XXXX[,RL-YYYY]`` and its bracketed alias
    ``# reprolint: ignore[RL-XXXX,RL-YYYY]`` suppress on the comment's
    own line; ``disable-next=`` / ``ignore-next[...]`` suppress on the
    following line (for statements too long to carry a trailing
    comment).  The special token ``all`` suppresses every rule.
    Comments are found with :mod:`tokenize`, so a ``#`` inside a string
    literal is never mistaken for a suppression.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_PATTERN.search(tok.string)
            if match is None:
                continue
            raw_ids = match.group("ids") or match.group("bracket_ids")
            ids = {
                part.strip()
                for part in raw_ids.split(",")
                if part.strip()
            }
            if ids:
                is_next = bool(
                    match.group("next") or match.group("bracket_next")
                )
                line = tok.start[0] + (1 if is_next else 0)
                suppressions.setdefault(line, set()).update(ids)
    except tokenize.TokenError:
        # Unterminated constructs: the ast parse will report the real error.
        pass
    return suppressions


def _suppressed_ids(
    suppressions: dict[int, set[str]], start: int, end: int
) -> set[str]:
    """Union of suppressions across the statement's physical lines.

    A trailing comment on *any* line of a multi-line statement suppresses
    the whole statement, so wrapped calls and parenthesised expressions
    can carry the comment wherever it is readable.
    """
    ids: set[str] = set()
    for line in range(start, max(start, end) + 1):
        ids |= suppressions.get(line, set())
    return ids


class ModuleContext:
    """Everything rules may want to know about the module being linted."""

    def __init__(self, path: str, source: str) -> None:
        self.path = str(PurePosixPath(Path(path).as_posix()))
        self.source = source
        self._parts = PurePosixPath(self.path).parts
        self._stem = PurePosixPath(self.path).stem
        #: ``import numpy as np`` -> {"np": "numpy"}
        self.module_aliases: dict[str, str] = {}
        #: ``from numpy.random import default_rng as mk`` ->
        #: {"mk": ("numpy.random", "default_rng")}
        self.imported_names: dict[str, tuple[str, str]] = {}
        #: Enclosing FunctionDef/AsyncFunctionDef/ClassDef/Lambda nodes.
        self.scope_stack: list[ast.AST] = []

    # ------------------------------------------------------------------
    # Path classification
    # ------------------------------------------------------------------
    @property
    def is_test_code(self) -> bool:
        """Test/benchmark modules are exempt from simulation-only rules."""
        in_test_tree = any(p in ("tests", "benchmarks") for p in self._parts)
        test_file = (
            self._stem.startswith(("test_", "bench_")) or self._stem == "conftest"
        )
        return in_test_tree or test_file

    def has_dir(self, *names: str) -> bool:
        """Whether any path component equals one of ``names``."""
        return any(p in names for p in self._parts[:-1])

    def path_endswith(self, suffix: str) -> bool:
        """Posix-style suffix match on the module path."""
        return self.path.endswith(suffix)

    @property
    def module_stem(self) -> str:
        """Filename without extension (``engine`` for ``lint/engine.py``)."""
        return self._stem

    # ------------------------------------------------------------------
    # Name resolution across imports
    # ------------------------------------------------------------------
    def record_imports(self, node: ast.AST) -> None:
        """Track ``import``/``from ... import`` bindings as they are met."""
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                self.module_aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                self.imported_names[bound] = (node.module, alias.name)

    def resolve_call_name(self, func: ast.AST) -> str | None:
        """Fully-qualified dotted name of a call target, if resolvable.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``"numpy.random.rand"``; a bare name imported via
        ``from numpy.random import rand`` resolves the same way.  Returns
        ``None`` for dynamic targets (subscripts, call results, ...).
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.module_aliases:
            parts[0] = self.module_aliases[root]
        elif root in self.imported_names:
            module, original = self.imported_names[root]
            parts[0:1] = [module, original]
        return ".".join(parts)

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------
    @property
    def enclosing_function(self) -> ast.AST | None:
        """Innermost enclosing function/lambda node, if any."""
        for frame in reversed(self.scope_stack):
            if isinstance(frame, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return frame
        return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


class _Dispatcher(ast.NodeVisitor):
    """Single-pass visitor feeding each node to the subscribed rules."""

    def __init__(
        self,
        ctx: ModuleContext,
        rules: Sequence[Rule],
        timings: dict[str, float] | None = None,
    ) -> None:
        self.ctx = ctx
        self.findings: list[tuple[ast.AST, str, str]] = []
        self.timings = timings if timings is not None else {}
        self._by_type: dict[type, list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self._by_type.setdefault(node_type, []).append(rule)

    def visit(self, node: ast.AST) -> None:
        self.ctx.record_imports(node)
        for rule in self._by_type.get(type(node), ()):
            start = perf_counter()
            for offending, message in rule.check(node, self.ctx):
                self.findings.append((offending, rule.rule_id, message))
            self.timings[rule.rule_id] = (
                self.timings.get(rule.rule_id, 0.0) + perf_counter() - start
            )
        if isinstance(node, _SCOPE_NODES):
            self.ctx.scope_stack.append(node)
            try:
                self.generic_visit(node)
            finally:
                self.ctx.scope_stack.pop()
        else:
            self.generic_visit(node)


def resolve_lint_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directory trees into a deduplicated file list.

    Overlapping targets (``src`` and ``src/repro``, a directory plus a
    file inside it, the same path twice) resolve to each file exactly
    once, so no finding is ever double-reported.  Raises
    :class:`FileNotFoundError` for a target that is neither.
    """
    files: list[Path] = []
    seen: set[Path] = set()
    for target in paths:
        target = Path(target)
        if target.is_dir():
            candidates = [
                file
                for file in sorted(target.rglob("*.py"))
                if not any(
                    part in _SKIP_DIR_NAMES or part.endswith(".egg-info")
                    for part in file.parts
                )
            ]
        elif target.is_file():
            candidates = [target]
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
        for file in candidates:
            key = file.resolve()
            if key not in seen:
                seen.add(key)
                files.append(file)
    return files


def _lint_batch_worker(
    items: Sequence[tuple[str, str]],
) -> tuple[list[tuple[str, int, int, str, str]], dict[str, float]]:
    """Process-pool worker: run the per-file pass over a batch of sources.

    Returns plain tuples (not :class:`Finding`) plus the batch's per-rule
    timings, keeping the pickled payload small and version-independent.
    Workers always run the full default rule set; engines with a custom
    rule selection lint serially.
    """
    engine = LintEngine(project_rules=())
    out: list[tuple[str, int, int, str, str]] = []
    for path, source in items:
        for finding in engine._run_file_rules(source, path):
            out.append(
                (finding.path, finding.line, finding.col, finding.rule_id,
                 finding.message)
            )
    return out, engine.rule_timings


class LintEngine:
    """Runs the registered rules over sources, files, and trees."""

    def __init__(
        self,
        rules: Sequence[type[Rule]] | None = None,
        project_rules: Sequence[type[ProjectRule]] | None = None,
    ) -> None:
        self._default_rule_set = rules is None and project_rules is None
        self._rule_classes = tuple(rules) if rules is not None else all_rules()
        self._project_rule_classes = (
            tuple(project_rules) if project_rules is not None
            else all_project_rules()
        )
        #: Cumulative wall time spent inside each rule (rule id -> seconds),
        #: accumulated across every lint call on this engine.  Cached files
        #: contribute nothing — the rules never ran for them.
        self.rule_timings: dict[str, float] = {}

    @property
    def rule_classes(self) -> tuple[type[Rule], ...]:
        """The per-file rule classes this engine runs."""
        return self._rule_classes

    @property
    def project_rule_classes(self) -> tuple[type[ProjectRule], ...]:
        """The whole-project rule classes this engine runs."""
        return self._project_rule_classes

    # ------------------------------------------------------------------
    # Per-file pass
    # ------------------------------------------------------------------
    def _run_file_rules(self, source: str, path: str) -> list[Finding]:
        """The cacheable per-file pass: parse once, dispatch, suppress."""
        ctx = ModuleContext(path, source)
        try:
            tree = ast.parse(source, filename=ctx.path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=ctx.path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
        suppressions = collect_suppressions(source)
        active = [cls() for cls in self._rule_classes]
        active = [rule for rule in active if rule.applies_to(ctx)]
        dispatcher = _Dispatcher(ctx, active, self.rule_timings)
        dispatcher.visit(tree)

        findings: list[Finding] = []
        for node, rule_id, message in dispatcher.findings:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            end_line = getattr(node, "end_lineno", None) or line
            suppressed = _suppressed_ids(suppressions, line, end_line)
            if rule_id in suppressed or "all" in suppressed:
                continue
            findings.append(
                Finding(
                    path=ctx.path, line=line, col=col,
                    rule_id=rule_id, message=message,
                )
            )
        return sort_findings(findings)

    # ------------------------------------------------------------------
    # Whole-project pass
    # ------------------------------------------------------------------
    def _run_project_rules(
        self, items: Sequence[tuple[str, str]]
    ) -> list[Finding]:
        if not self._project_rule_classes:
            return []
        from repro.lint.project import ProjectModel

        project = ProjectModel.from_sources(items)
        by_path = {record.path: record for record in project}
        findings: list[Finding] = []
        seen: set[tuple[str, int, int, str, str]] = set()
        for cls in self._project_rule_classes:
            rule = cls()
            start = perf_counter()
            results = list(rule.check_project(project))
            self.rule_timings[cls.rule_id] = (
                self.rule_timings.get(cls.rule_id, 0.0) + perf_counter() - start
            )
            for path, anchor, message in results:
                if isinstance(anchor, int):
                    line, col, end_line = anchor, 0, anchor
                elif anchor is not None:
                    line = getattr(anchor, "lineno", 1)
                    col = getattr(anchor, "col_offset", 0)
                    end_line = getattr(anchor, "end_lineno", None) or line
                else:
                    line, col, end_line = 1, 0, 1
                record = by_path.get(path)
                if record is not None:
                    suppressed = _suppressed_ids(
                        record.suppressions, line, end_line
                    )
                    if cls.rule_id in suppressed or "all" in suppressed:
                        continue
                key = (path, line, col, cls.rule_id, message)
                if key in seen:
                    continue  # nested scopes may re-derive the same flow
                seen.add(key)
                findings.append(
                    Finding(
                        path=path, line=line, col=col,
                        rule_id=cls.rule_id, message=message,
                    )
                )
        return findings

    def _parallel_file_pass(
        self, pending: Sequence[tuple[str, str]], jobs: int
    ) -> list[Finding] | None:
        """Per-file pass over a process pool; ``None`` means fall back."""
        if not self._default_rule_set:
            return None  # workers can only reconstruct the default rule set
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            mp_context = multiprocessing.get_context()
        chunk = max(1, len(pending) // (jobs * 4) or 1)
        batches = [
            list(pending[i : i + chunk]) for i in range(0, len(pending), chunk)
        ]
        findings: list[Finding] = []
        try:
            with ProcessPoolExecutor(
                max_workers=jobs, mp_context=mp_context
            ) as pool:
                for rows, timings in pool.map(_lint_batch_worker, batches):
                    findings.extend(Finding(*row) for row in rows)
                    for rule_id, seconds in timings.items():
                        self.rule_timings[rule_id] = (
                            self.rule_timings.get(rule_id, 0.0) + seconds
                        )
        except (BrokenExecutor, OSError):  # pragma: no cover - pool breakage
            return None
        return findings

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one module given as a source string (full rule set: the
        project passes run on the single-module project)."""
        return self.lint_sources([(path, source)])

    def lint_sources(
        self,
        items: Sequence[tuple[str, str]],
        *,
        cache: "LintCache | None" = None,  # noqa: F821 - lazy import below
        jobs: int = 1,
    ) -> list[Finding]:
        """Lint ``(path, source)`` pairs as one project.

        ``cache`` (a :class:`repro.lint.cache.LintCache`) skips the
        per-file pass for unchanged content; ``jobs > 1`` runs cache
        misses on a process pool.
        """
        items = [
            (str(PurePosixPath(Path(str(path)).as_posix())), source)
            for path, source in items
        ]
        findings: list[Finding] = []
        pending: list[tuple[str, str]] = []
        for path, source in items:
            cached = cache.get(path, source) if cache is not None else None
            if cached is not None:
                findings.extend(cached)
            else:
                pending.append((path, source))
        if pending:
            computed: list[Finding] | None = None
            if jobs > 1 and len(pending) > 1:
                computed = self._parallel_file_pass(pending, jobs)
            if computed is None:
                computed = []
                for path, source in pending:
                    computed.extend(self._run_file_rules(source, path))
            if cache is not None:
                by_path: dict[str, list[Finding]] = {
                    path: [] for path, _ in pending
                }
                for finding in computed:
                    by_path.setdefault(finding.path, []).append(finding)
                for path, source in pending:
                    cache.put(path, source, by_path.get(path, []))
            findings.extend(computed)
        # The cross-module pass is cached as one project-level entry
        # keyed on every module's content (see LintCache.get_project):
        # an edit to any file re-runs the import-graph/call-graph rules,
        # which is exactly the cross-file invalidation they require.
        project_findings = (
            cache.get_project(items) if cache is not None else None
        )
        if project_findings is None:
            project_findings = self._run_project_rules(items)
            if cache is not None:
                cache.put_project(items, project_findings)
        findings.extend(project_findings)
        return sort_findings(findings)

    def lint_file(self, path: str | Path) -> list[Finding]:
        """Lint one file on disk."""
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, str(path))

    def lint_files(
        self,
        files: Sequence[str | Path],
        *,
        cache: "LintCache | None" = None,  # noqa: F821
        jobs: int = 1,
    ) -> list[Finding]:
        """Lint an explicit file list as one project."""
        items = [
            (str(file), Path(file).read_text(encoding="utf-8"))
            for file in files
        ]
        return self.lint_sources(items, cache=cache, jobs=jobs)

    def lint_paths(
        self,
        paths: Iterable[str | Path],
        *,
        cache: "LintCache | None" = None,  # noqa: F821
        jobs: int = 1,
    ) -> list[Finding]:
        """Lint files and directory trees; directories are walked for .py."""
        return self.lint_files(resolve_lint_files(paths), cache=cache, jobs=jobs)


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint a source string with all registered rules."""
    return LintEngine().lint_source(source, path)


def lint_sources(items: Sequence[tuple[str, str]]) -> list[Finding]:
    """Lint ``(path, source)`` pairs as one project with all rules."""
    return LintEngine().lint_sources(items)


def lint_paths(paths: Iterable[str | Path], **kwargs) -> list[Finding]:
    """Lint files/trees with all registered rules (see ``LintEngine.lint_paths``)."""
    return LintEngine().lint_paths(paths, **kwargs)
