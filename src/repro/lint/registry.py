"""Rule base classes and the global rule registries.

Two kinds of rule exist:

* a per-file :class:`Rule` has a unique ``rule_id`` (``RL-<pack
  letter><3 digits>``), a one-line ``title``, the AST ``node_types`` it
  wants to inspect, and a :meth:`Rule.check` generator yielding
  ``(node, message)`` pairs; the engine walks each module's AST exactly
  once and dispatches nodes to subscribed rules, so adding a rule never
  adds a traversal;
* a :class:`ProjectRule` sees the whole :class:`~repro.lint.project.ProjectModel`
  at once and yields ``(path, node, message)`` triples, so it can reason
  across import and call boundaries (RNG taint, unit inference, API
  graph).

Decorating a class with :func:`register` / :func:`register_project` makes
the engine run it.  Rule ids are unique across *both* registries.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import ModuleContext
    from repro.lint.project import ProjectModel

__all__ = [
    "ProjectRule",
    "RULESET_VERSION",
    "Rule",
    "all_project_rules",
    "all_rules",
    "get_rule",
    "register",
    "register_project",
    "ruleset_signature",
]

#: Bumped whenever rule semantics change, so content-addressed cache
#: entries written by an older rule set are never reused.
#: 3: concurrency pack (RL-C001..C005) + ``ignore[...]`` suppressions.
#: 4: array-semantics pack (RL-N001..N005).
RULESET_VERSION = "4"

_RULE_ID_PATTERN = re.compile(r"^RL-[A-Z]\d{3}$")

_REGISTRY: dict[str, Type["Rule"]] = {}

_PROJECT_REGISTRY: dict[str, Type["ProjectRule"]] = {}


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    One instance is created per linted module, so instances may keep
    per-module state across calls.
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    #: AST node classes this rule wants to see.
    node_types: ClassVar[tuple[type, ...]] = ()

    def applies_to(self, ctx: "ModuleContext") -> bool:
        """Whether this rule runs at all for the module in ``ctx``."""
        return True

    def check(self, node: ast.AST, ctx: "ModuleContext") -> Iterator[tuple[ast.AST, str]]:
        """Yield ``(offending_node, message)`` for each violation at ``node``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass typing


class ProjectRule:
    """Base class for whole-project (cross-module) reprolint rules.

    One instance is created per lint run; :meth:`check_project` sees the
    complete :class:`~repro.lint.project.ProjectModel` and yields
    ``(path, anchor, message)`` triples.  The anchor may be an AST node
    (line/column taken from it), a bare line number, or ``None`` for the
    top of the file.
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""

    def check_project(
        self, project: "ProjectModel"
    ) -> Iterator[tuple[str, "ast.AST | int | None", str]]:
        """Yield ``(path, node, message)`` for each violation in the project."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass typing


def _validate_rule_id(cls: type) -> None:
    if not _RULE_ID_PATTERN.match(cls.rule_id):
        raise ValueError(
            f"rule id {cls.rule_id!r} does not match the RL-Xnnn convention"
        )
    if not cls.title:
        raise ValueError(f"rule {cls.rule_id} must set a title")
    existing = _REGISTRY.get(cls.rule_id) or _PROJECT_REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a per-file rule to the global registry.

    Enforces the ``RL-Xnnn`` id convention and id uniqueness, so a
    copy-pasted rule pack cannot silently mask an existing rule.
    """
    _validate_rule_id(cls)
    if not cls.node_types:
        raise ValueError(f"rule {cls.rule_id} must subscribe to node types")
    _REGISTRY[cls.rule_id] = cls
    return cls


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the global registry."""
    _validate_rule_id(cls)
    _PROJECT_REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    # Importing the pack modules triggers their @register decorators.
    from repro.lint import flow, rules  # noqa: F401


def all_rules() -> tuple[Type[Rule], ...]:
    """All registered per-file rule classes, sorted by rule id."""
    _load_builtin_rules()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def all_project_rules() -> tuple[Type[ProjectRule], ...]:
    """All registered project (cross-module) rule classes, sorted by id."""
    _load_builtin_rules()
    return tuple(_PROJECT_REGISTRY[rule_id] for rule_id in sorted(_PROJECT_REGISTRY))


def get_rule(rule_id: str) -> Type[Rule] | Type[ProjectRule]:
    """Look up one rule class by id; raises ``KeyError`` if unknown."""
    _load_builtin_rules()
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]
    return _PROJECT_REGISTRY[rule_id]


def ruleset_signature(rule_ids: "Iterable[str] | None" = None) -> str:
    """Stable digest of the rule ids in play + :data:`RULESET_VERSION`.

    Cache entries are keyed on this, so adding/removing a rule or bumping
    the version invalidates every cached per-file result at once.  With
    ``rule_ids`` (e.g. from ``--select``/``--ignore`` filtering) the
    digest covers exactly that selection, so a filtered run never reuses
    a full run's cached findings or vice versa.
    """
    if rule_ids is None:
        ids = [cls.rule_id for cls in all_rules()]
        ids += [cls.rule_id for cls in all_project_rules()]
    else:
        ids = list(rule_ids)
    blob = ",".join(sorted(ids)) + "|" + RULESET_VERSION
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
