"""Rule base class and the global rule registry.

A rule is a class with a unique ``rule_id`` (``RL-<pack letter><3 digits>``),
a one-line ``title``, the AST ``node_types`` it wants to inspect, and a
:meth:`Rule.check` generator yielding ``(node, message)`` pairs.  Decorating
the class with :func:`register` makes the engine run it.

The engine walks each module's AST exactly once; at every node it
dispatches to the registered rules subscribed to that node type, so adding
a rule never adds a traversal.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, ClassVar, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lint.engine import ModuleContext

__all__ = ["Rule", "all_rules", "get_rule", "register"]

_RULE_ID_PATTERN = re.compile(r"^RL-[A-Z]\d{3}$")

_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    One instance is created per linted module, so instances may keep
    per-module state across calls.
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    #: AST node classes this rule wants to see.
    node_types: ClassVar[tuple[type, ...]] = ()

    def applies_to(self, ctx: "ModuleContext") -> bool:
        """Whether this rule runs at all for the module in ``ctx``."""
        return True

    def check(self, node: ast.AST, ctx: "ModuleContext") -> Iterator[tuple[ast.AST, str]]:
        """Yield ``(offending_node, message)`` for each violation at ``node``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass typing


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Enforces the ``RL-Xnnn`` id convention and id uniqueness, so a
    copy-pasted rule pack cannot silently mask an existing rule.
    """
    if not _RULE_ID_PATTERN.match(cls.rule_id):
        raise ValueError(
            f"rule id {cls.rule_id!r} does not match the RL-Xnnn convention"
        )
    if not cls.title:
        raise ValueError(f"rule {cls.rule_id} must set a title")
    if not cls.node_types:
        raise ValueError(f"rule {cls.rule_id} must subscribe to node types")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    # Importing the pack modules triggers their @register decorators.
    from repro.lint import rules  # noqa: F401


def all_rules() -> tuple[Type[Rule], ...]:
    """All registered rule classes, sorted by rule id."""
    _load_builtin_rules()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Type[Rule]:
    """Look up one rule class by id; raises ``KeyError`` if unknown."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]
