"""CLI wiring for ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the top-level CLI only pays the
import cost of the lint engine when the subcommand actually runs.

Exit codes: 0 clean (or baseline updated), 1 findings, 2 usage error.
Usage errors go to stderr; ``--statistics`` also prints to stderr so the
stdout report stays machine-parseable under ``--format json``/``sarif``.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["configure_parser", "run_lint"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts and per-pack rule timings "
        "to stderr",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in this baseline document",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline (--baseline, default "
        ".reprolint-baseline.json) from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="run only these rules (comma-separated ids or prefixes, "
        "e.g. --select RL-C001,RL-C002 or --select RL-C; repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULES",
        help="skip these rules (comma-separated ids or prefixes; "
        "repeatable, applied after --select)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="process-pool workers for the per-file pass "
        "(0 = one per CPU, default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        nargs="?",
        const=".reprolint-cache",
        default=None,
        metavar="DIR",
        help="enable the content-addressed per-file result cache "
        "(default dir when the flag is given bare: .reprolint-cache)",
    )


def _expand_selectors(values: list[str], known_ids: set[str]) -> set[str]:
    """Expand ``--select``/``--ignore`` selectors into rule ids.

    Each selector is an exact rule id or a prefix (``RL-C`` selects the
    whole concurrency pack).  A selector matching no registered rule is
    a usage error (:class:`ValueError`): a typo must not silently lint
    nothing.
    """
    selected: set[str] = set()
    for chunk in values:
        for selector in chunk.split(","):
            selector = selector.strip()
            if not selector:
                continue
            matched = {rid for rid in known_ids if rid.startswith(selector)}
            if not matched:
                raise ValueError(
                    f"no rule matches selector {selector!r} "
                    "(see --list-rules)"
                )
            selected |= matched
    return selected


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    import os

    from repro.lint.baseline import (
        DEFAULT_BASELINE_PATH,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.lint.cache import LintCache
    from repro.lint.engine import LintEngine
    from repro.lint.registry import (
        all_project_rules,
        all_rules,
        ruleset_signature,
    )
    from repro.lint.reporting import (
        render_json,
        render_sarif,
        render_statistics,
        render_text,
    )

    if args.list_rules:
        for rule in (*all_rules(), *all_project_rules()):
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    rule_classes = all_rules()
    project_classes = all_project_rules()
    known_ids = {cls.rule_id for cls in (*rule_classes, *project_classes)}
    try:
        selected = (
            _expand_selectors(args.select, known_ids)
            if args.select is not None
            else set(known_ids)
        )
        ignored = (
            _expand_selectors(args.ignore, known_ids)
            if args.ignore is not None
            else set()
        )
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    filtered = args.select is not None or args.ignore is not None
    active_ids = selected - ignored

    if filtered:
        engine = LintEngine(
            rules=[c for c in rule_classes if c.rule_id in active_ids],
            project_rules=[
                c for c in project_classes if c.rule_id in active_ids
            ],
        )
        # The cache signature covers exactly the selection, so filtered
        # and full runs never reuse each other's entries.
        signature = ruleset_signature(active_ids)
    else:
        engine = LintEngine()
        signature = ruleset_signature()

    cache = None
    if args.cache_dir is not None:
        cache = LintCache(args.cache_dir, signature)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    try:
        findings = engine.lint_paths(args.paths, cache=cache, jobs=jobs)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE_PATH
        write_baseline(target, findings)
        print(
            f"reprolint: baseline written to {target} "
            f"({len(findings)} findings)",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        try:
            allowed = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"reprolint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, allowed)

    renderer = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.output_format]
    try:
        print(renderer(findings))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the exit code still stands.
        pass
    if args.statistics:
        print(
            render_statistics(findings, engine.rule_timings), file=sys.stderr
        )
    return 1 if findings else 0
