"""CLI wiring for ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the top-level CLI only pays the
import cost of the lint engine when the subcommand actually runs.

Exit codes: 0 clean (or baseline updated), 1 findings, 2 usage error.
Usage errors go to stderr; ``--statistics`` also prints to stderr so the
stdout report stays machine-parseable under ``--format json``/``sarif``.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["configure_parser", "run_lint"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts to stderr",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in this baseline document",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline (--baseline, default "
        ".reprolint-baseline.json) from the current findings and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="process-pool workers for the per-file pass "
        "(0 = one per CPU, default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        nargs="?",
        const=".reprolint-cache",
        default=None,
        metavar="DIR",
        help="enable the content-addressed per-file result cache "
        "(default dir when the flag is given bare: .reprolint-cache)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code."""
    import os

    from repro.lint.baseline import (
        DEFAULT_BASELINE_PATH,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.lint.cache import LintCache
    from repro.lint.engine import LintEngine
    from repro.lint.registry import (
        all_project_rules,
        all_rules,
        ruleset_signature,
    )
    from repro.lint.reporting import (
        render_json,
        render_sarif,
        render_statistics,
        render_text,
    )

    if args.list_rules:
        for rule in (*all_rules(), *all_project_rules()):
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    cache = None
    if args.cache_dir is not None:
        cache = LintCache(args.cache_dir, ruleset_signature())
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    engine = LintEngine()
    try:
        findings = engine.lint_paths(args.paths, cache=cache, jobs=jobs)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE_PATH
        write_baseline(target, findings)
        print(
            f"reprolint: baseline written to {target} "
            f"({len(findings)} findings)",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        try:
            allowed = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"reprolint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        findings = apply_baseline(findings, allowed)

    renderer = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.output_format]
    try:
        print(renderer(findings))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the exit code still stands.
        pass
    if args.statistics:
        print(render_statistics(findings), file=sys.stderr)
    return 1 if findings else 0
