"""CLI wiring for ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the top-level CLI only pays the
import cost of the lint engine when the subcommand actually runs.
"""

from __future__ import annotations

import argparse

__all__ = ["configure_parser", "run_lint"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint subcommand's arguments to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint subcommand; returns the process exit code.

    Exit codes: 0 clean, 1 findings, 2 usage error (bad path).
    """
    from repro.lint.engine import lint_paths
    from repro.lint.registry import all_rules
    from repro.lint.reporting import render_json, render_text

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
        return 0

    try:
        findings = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}")
        return 2

    renderer = render_json if args.output_format == "json" else render_text
    try:
        print(renderer(findings))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; the exit code still stands.
        pass
    return 1 if findings else 0
