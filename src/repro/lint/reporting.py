"""Finding reporters: compiler-style text, JSON, and SARIF 2.1.0.

The SARIF renderer targets the GitHub code-scanning ingestion subset of
SARIF 2.1.0: one run, a ``tool.driver`` with the full rule catalogue
(per-file and project rules), and one ``result`` per finding with a
``physicalLocation``.  Columns are converted from reprolint's 0-based
convention to SARIF's 1-based one.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from typing import Mapping, Sequence

from repro.lint.findings import Finding

__all__ = [
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "render_json",
    "render_sarif",
    "render_statistics",
    "render_text",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding, plus a tally."""
    lines = [finding.format() for finding in findings]
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"reprolint: {count} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document for tooling (CI annotations, dashboards)."""
    payload = {
        "tool": "reprolint",
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_catalogue() -> list[dict]:
    from repro.lint.registry import all_project_rules, all_rules

    catalogue = [
        {
            "id": cls.rule_id,
            "name": cls.__name__,
            "shortDescription": {"text": cls.title},
        }
        for cls in (*all_rules(), *all_project_rules())
    ]
    return sorted(catalogue, key=lambda rule: rule["id"])


def render_sarif(findings: Sequence[Finding]) -> str:
    """A SARIF 2.1.0 log suitable for GitHub code scanning upload."""
    rules = _rule_catalogue()
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/reprolint.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: ``RL-N001`` -> pack ``RL-N``: the letter names the pack, the digits the
#: rule within it.
_PACK_PREFIX = re.compile(r"^([A-Z]+-[A-Z]+)\d")


def _pack_of(rule_id: str) -> str:
    match = _PACK_PREFIX.match(rule_id)
    return match.group(1) if match else rule_id


def render_statistics(
    findings: Sequence[Finding],
    rule_timings: Mapping[str, float] | None = None,
) -> str:
    """Per-rule finding counts plus per-pack rule execution time.

    Counts come first, most frequent rule first (ties by rule id).  When
    ``rule_timings`` (rule id -> seconds, as accumulated on
    :attr:`LintEngine.rule_timings`) is given, a second section
    aggregates the time by rule pack — the letter prefix shared by a
    family of rules, e.g. ``RL-N`` for the array-semantics pack — so the
    cost of enabling a whole pack is visible at a glance, slowest pack
    first.
    """
    counts = Counter(finding.rule_id for finding in findings)
    lines = [
        f"{rule_id:<10} {count:>5}"
        for rule_id, count in sorted(
            counts.items(), key=lambda item: (-item[1], item[0])
        )
    ]
    lines.append(f"{'total':<10} {len(findings):>5}")
    if rule_timings:
        pack_seconds: dict[str, float] = {}
        for rule_id, seconds in rule_timings.items():
            pack = _pack_of(rule_id)
            pack_seconds[pack] = pack_seconds.get(pack, 0.0) + seconds
        lines.append("")
        lines.append("pack timings:")
        for pack, seconds in sorted(
            pack_seconds.items(), key=lambda item: (-item[1], item[0])
        ):
            lines.append(f"{pack:<10} {seconds * 1000.0:>8.1f} ms")
    return "\n".join(lines)
