"""Finding reporters: compiler-style text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.findings import Finding

__all__ = ["render_json", "render_text"]


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding, plus a tally."""
    lines = [finding.format() for finding in findings]
    count = len(findings)
    noun = "finding" if count == 1 else "findings"
    lines.append(f"reprolint: {count} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """A stable JSON document for tooling (CI annotations, dashboards)."""
    payload = {
        "tool": "reprolint",
        "count": len(findings),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
