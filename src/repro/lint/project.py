"""The reprolint project model: whole-tree view for cross-module passes.

The per-file engine sees one module at a time, so any invariant spanning
a call or import boundary is invisible to it.  This module builds the
shared substrate the flow-analysis passes (:mod:`repro.lint.flow`) run
on: one :class:`ModuleRecord` per parsed module (AST, import tables,
top-level symbol table, ``__all__``, suppression map) and a
:class:`ProjectModel` aggregating them into an import graph and a
cross-module name-resolution service built on the same
``resolve_call_name`` machinery the per-file rules use.

Module names are derived from paths: everything after the last ``src``
path component (``src/repro/em/waves.py`` -> ``repro.em.waves``), falling
back to the first ``repro`` component, then to the bare stem.  This keeps
virtual fixture paths, relative CLI paths, and absolute test paths all
landing on the same dotted names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, Sequence

__all__ = [
    "ModuleRecord",
    "ProjectModel",
    "module_name_for_path",
]


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path (best effort, see module docs)."""
    posix = PurePosixPath(Path(path).as_posix())
    parts = list(posix.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchored: list[str] | None = None
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        anchored = parts[idx + 1 :]
    elif "repro" in parts:
        anchored = parts[parts.index("repro") :]
    if anchored:
        return ".".join(anchored)
    return parts[-1] if parts else ""


def _is_type_checking_guard(test: ast.expr) -> bool:
    """Whether an ``if`` test is the ``TYPE_CHECKING`` import-cycle guard."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@dataclass
class ModuleRecord:
    """Everything the project passes need to know about one module."""

    path: str
    name: str
    source: str
    tree: ast.Module
    ctx: "ModuleContext"  # noqa: F821 - imported lazily to avoid a cycle
    is_package: bool
    #: Lazily tokenized suppression map (see :attr:`suppressions`).
    _suppressions: dict[int, set[str]] | None = field(
        default=None, repr=False
    )
    #: Names bound at module top level (defs, classes, assigns, imports).
    symbols: set[str] = field(default_factory=set)
    #: ``__all__`` string entries, or ``None`` when absent/not statically
    #: resolvable (computed ``__all__`` disables the export checks).
    dunder_all: list[str] | None = None
    #: The assignment node carrying ``__all__`` (for finding locations).
    dunder_all_node: ast.stmt | None = None
    #: Top-level imported dotted targets with their linenos, in order.
    top_imports: list[tuple[str, int]] = field(default_factory=list)
    #: Local qualname (``func`` / ``Class.method``) -> function node.
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )

    @property
    def is_test_code(self) -> bool:
        return self.ctx.is_test_code

    @property
    def suppressions(self) -> dict[int, set[str]]:
        """Line -> suppressed rule ids (same shape as ``collect_suppressions``).

        Tokenizing every module costs more than the flow passes
        themselves, and only modules that actually produce findings need
        their suppression map — so it is built on first access.
        """
        if self._suppressions is None:
            from repro.lint.engine import collect_suppressions

            self._suppressions = collect_suppressions(self.source)
        return self._suppressions


class ProjectModel:
    """Import graph + symbol tables + call resolution over a module set."""

    def __init__(self, records: Sequence[ModuleRecord]) -> None:
        self.modules: dict[str, ModuleRecord] = {}
        for record in records:
            # Duplicate dotted names (e.g. two trees linted together) keep
            # the first record; per-file rules still cover the shadowed one.
            self.modules.setdefault(record.name, record)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, items: Iterable[tuple[str, str]]) -> "ProjectModel":
        """Build the model from ``(path, source)`` pairs, skipping files
        that do not parse (the per-file pass reports those as RL-E001)."""
        from repro.lint.engine import ModuleContext

        records: list[ModuleRecord] = []
        for path, source in items:
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError:
                continue
            ctx = ModuleContext(str(path), source)
            for node in ast.walk(tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    ctx.record_imports(node)
            record = ModuleRecord(
                path=ctx.path,
                name=module_name_for_path(ctx.path),
                source=source,
                tree=tree,
                ctx=ctx,
                is_package=ctx.path.endswith("__init__.py"),
            )
            _index_top_level(record)
            _index_functions(record)
            records.append(record)
        return cls(records)

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def module_of(self, dotted: str | None) -> ModuleRecord | None:
        """Project module owning a fully-qualified dotted name, if any.

        Longest-prefix match: ``repro.em.waves.two_wave_rf_power`` resolves
        to the ``repro.em.waves`` module when that module is in the model.
        """
        if not dotted:
            return None
        name = dotted
        while True:
            record = self.modules.get(name)
            if record is not None:
                return record
            cut = name.rfind(".")
            if cut < 0:
                return None
            name = name[:cut]

    def resolve_symbol(
        self, dotted: str | None
    ) -> tuple[ModuleRecord, str] | None:
        """Split a dotted name into (owning module, local symbol path)."""
        record = self.module_of(dotted)
        if record is None or dotted is None:
            return None
        if dotted == record.name:
            return record, ""
        return record, dotted[len(record.name) + 1 :]

    def resolve_function(
        self, dotted: str | None
    ) -> tuple[ModuleRecord, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """Resolve a dotted call target to a project function definition."""
        resolved = self.resolve_symbol(dotted)
        if resolved is None:
            return None
        record, symbol = resolved
        node = record.functions.get(symbol)
        if node is None:
            return None
        return record, node

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------
    def import_edges(self) -> dict[str, dict[str, int]]:
        """Project-internal import graph: src -> {dst: first lineno}.

        Only *top-level* imports count (lazy function-level imports are the
        sanctioned way to break a cycle on purpose), and ``TYPE_CHECKING``
        blocks are excluded for the same reason.  Edges point at the
        deepest project module the import statement names; the implicit
        package ``__init__`` executions Python performs on the way down are
        not edges, because cycles through a package init that only touches
        submodules are benign at runtime.
        """
        edges: dict[str, dict[str, int]] = {}
        for record in self.modules.values():
            out = edges.setdefault(record.name, {})
            for target, lineno in record.top_imports:
                dst = self.module_of(target)
                if dst is None or dst.name == record.name:
                    continue
                out.setdefault(dst.name, lineno)
        return edges

    def import_cycles(self) -> list[list[str]]:
        """Cycles in the top-level import graph, as sorted module lists.

        Returns one entry per strongly connected component of size > 1
        (plus self-loops), each sorted for deterministic reporting.
        """
        edges = {src: set(dsts) for src, dsts in self.import_edges().items()}
        cycles = [sorted(scc) for scc in _tarjan_sccs(edges) if len(scc) > 1]
        for src, dsts in edges.items():
            if src in dsts:
                cycles.append([src])
        return sorted(cycles)

    # ------------------------------------------------------------------
    # Cross-module reference index
    # ------------------------------------------------------------------
    def external_references(self) -> dict[str, set[str]]:
        """Map module name -> symbols referenced from *other* modules.

        A symbol counts as referenced when another module imports it
        (``from m import name``) or reaches it through a module alias
        (``import m as x; x.name``).
        """
        refs: dict[str, set[str]] = {name: set() for name in self.modules}
        for record in self.modules.values():
            for module, original in record.ctx.imported_names.values():
                owner = self.module_of(f"{module}.{original}")
                if owner is not None and owner.name != record.name:
                    remainder = f"{module}.{original}"[len(owner.name) + 1 :]
                    head = remainder.split(".", 1)[0] if remainder else ""
                    if head:
                        refs[owner.name].add(head)
            for node in ast.walk(record.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                dotted = _attribute_dotted_name(node, record.ctx)
                owner = self.module_of(dotted)
                if owner is None or owner.name == record.name or dotted is None:
                    continue
                remainder = dotted[len(owner.name) + 1 :]
                head = remainder.split(".", 1)[0] if remainder else ""
                if head:
                    refs[owner.name].add(head)
        return refs

    def __len__(self) -> int:
        return len(self.modules)

    def __iter__(self) -> Iterator[ModuleRecord]:
        return iter(self.modules.values())


# ----------------------------------------------------------------------
# Record indexing helpers
# ----------------------------------------------------------------------
def _attribute_dotted_name(node: ast.Attribute, ctx: "ModuleContext") -> str | None:  # noqa: F821
    """Resolve an attribute chain through the module's import aliases."""
    return ctx.resolve_call_name(node)


def _bound_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _iter_top_level(
    body: Sequence[ast.stmt], *, skip_type_checking: bool
) -> Iterator[ast.stmt]:
    """Statements executed at import time, descending into if/try/with."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.If):
            if skip_type_checking and _is_type_checking_guard(stmt.test):
                children: list[ast.stmt] = list(stmt.orelse)
            else:
                children = [*stmt.body, *stmt.orelse]
            yield from _iter_top_level(children, skip_type_checking=skip_type_checking)
        elif isinstance(stmt, ast.Try):
            children = [*stmt.body, *stmt.orelse, *stmt.finalbody]
            for handler in stmt.handlers:
                children.extend(handler.body)
            yield from _iter_top_level(children, skip_type_checking=skip_type_checking)
        elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.For, ast.AsyncFor, ast.While)):
            yield from _iter_top_level(stmt.body, skip_type_checking=skip_type_checking)


def _resolve_relative(record: ModuleRecord, node: ast.ImportFrom) -> str | None:
    """Absolute dotted base for a relative ``from ... import`` statement."""
    package_parts = record.name.split(".")
    if not record.is_package:
        package_parts = package_parts[:-1]
    drop = node.level - 1
    if drop > len(package_parts):
        return None
    base_parts = package_parts[: len(package_parts) - drop]
    base = ".".join(base_parts)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base or None


def _index_top_level(record: ModuleRecord) -> None:
    """Populate symbols, ``__all__``, and the top-level import list."""
    for stmt in _iter_top_level(record.tree.body, skip_type_checking=True):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            record.symbols.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                record.symbols.update(_bound_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            record.symbols.update(_bound_names(stmt.target))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            record.symbols.update(_bound_names(stmt.target))
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                record.symbols.add(alias.asname or alias.name.split(".", 1)[0])
                record.top_imports.append((alias.name, stmt.lineno))
        elif isinstance(stmt, ast.ImportFrom):
            base = (
                stmt.module
                if stmt.level == 0
                else _resolve_relative(record, stmt)
            )
            for alias in stmt.names:
                if alias.name != "*":
                    record.symbols.add(alias.asname or alias.name)
                if base is not None and alias.name != "*":
                    record.top_imports.append((f"{base}.{alias.name}", stmt.lineno))
            if base is not None:
                record.top_imports.append((base, stmt.lineno))
    _extract_dunder_all(record)


def _extract_dunder_all(record: ModuleRecord) -> None:
    entries: list[str] = []
    node_found: ast.stmt | None = None
    resolvable = True
    for stmt in _iter_top_level(record.tree.body, skip_type_checking=True):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets, value = [stmt.target], stmt.value
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        node_found = stmt
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            entries.extend(e.value for e in value.elts)  # type: ignore[misc]
        else:
            resolvable = False
    if node_found is not None and resolvable:
        record.dunder_all = entries
        record.dunder_all_node = node_found


def _index_functions(record: ModuleRecord) -> None:
    for stmt in record.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            for inner in stmt.body:
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    record.functions[f"{stmt.name}.{inner.name}"] = inner


# ----------------------------------------------------------------------
# Strongly connected components (iterative Tarjan)
# ----------------------------------------------------------------------
def _tarjan_sccs(edges: dict[str, set[str]]) -> list[list[str]]:
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(edges):
        if root in index_of:
            continue
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in edges and child not in index_of:
                    continue
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(edges.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs
