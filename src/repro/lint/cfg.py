"""Per-function control-flow graphs for path-sensitive lint checks.

The flow passes in :mod:`repro.lint.flow` are deliberately
flow-insensitive; resource-safety questions ("is this handle closed on
*every* path out of the function?") are not answerable that way.  This
module builds a small statement-level CFG per function (or module body)
with distinguished ENTRY/EXIT sentinels, and provides a generic forward
*may* dataflow solver over it, so rules like RL-C004 can ask whether an
acquired resource may still be live when control reaches EXIT.

Modelled control flow: statement sequencing, ``if``/``elif``/``else``,
``while``/``for`` (including ``else`` clauses, ``break`` and
``continue``), ``with``, ``return``/``raise``, and ``try``/``except``/
``else``/``finally``.  Exceptions are modelled *only* for statements
lexically inside a ``try``: every such statement gets an edge into each
handler and into the ``finally`` suite, which is exactly the property
the must-release checks need (``acquire(); try: ... finally: release()``
releases on the exception path).  An arbitrary call raising outside any
``try`` is *not* an edge — modelling it would make every statement an
exit and drown the analysis in noise; RL-C005's syntactic try/finally
discipline covers that gap for locks.

Nested function and class definitions are opaque single statements:
their bodies get their own CFGs.
"""

from __future__ import annotations

import ast
from typing import Callable, FrozenSet, Iterable, Sequence

__all__ = ["CFG", "CFGNode", "build_cfg"]


class CFGNode:
    """One CFG vertex: a statement, or the ENTRY/EXIT sentinel."""

    __slots__ = ("id", "stmt", "kind", "successors")

    def __init__(self, node_id: int, stmt: ast.stmt | None, kind: str) -> None:
        self.id = node_id
        self.stmt = stmt
        self.kind = kind  # "entry" | "exit" | "stmt"
        self.successors: list[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.kind if self.stmt is None else type(self.stmt).__name__
        return f"CFGNode({self.id}, {label}, ->{self.successors})"


class CFG:
    """A per-function control-flow graph with a forward may-solver."""

    def __init__(
        self, nodes: list[CFGNode], entry: CFGNode, exit_node: CFGNode
    ) -> None:
        self.nodes = nodes
        self.entry = entry
        self.exit = exit_node

    def predecessors(self) -> dict[int, list[int]]:
        """Inverted edge map: node id -> predecessor ids."""
        preds: dict[int, list[int]] = {node.id: [] for node in self.nodes}
        for node in self.nodes:
            for succ in node.successors:
                preds[succ].append(node.id)
        return preds

    def statement_nodes(self) -> Iterable[CFGNode]:
        """The non-sentinel nodes, in creation (roughly source) order."""
        return (node for node in self.nodes if node.kind == "stmt")

    def forward_may(
        self,
        transfer: Callable[[ast.stmt, FrozenSet[str]], FrozenSet[str]],
        init: FrozenSet[str] = frozenset(),
    ) -> tuple[dict[int, FrozenSet[str]], dict[int, FrozenSet[str]]]:
        """Solve a forward *may* dataflow problem to fixpoint.

        ``transfer(stmt, facts_in) -> facts_out`` is applied at each
        statement node; sentinels are identity.  Facts at a join are the
        union over predecessors ("may" semantics).  Returns
        ``(in_sets, out_sets)`` keyed by node id; the facts that may
        survive to function exit are ``in_sets[cfg.exit.id]``.
        """
        in_sets: dict[int, FrozenSet[str]] = {
            node.id: frozenset() for node in self.nodes
        }
        out_sets: dict[int, FrozenSet[str]] = dict(in_sets)
        in_sets[self.entry.id] = init
        by_id = {node.id: node for node in self.nodes}
        visited: set[int] = set()
        worklist = [self.entry.id]
        while worklist:
            node_id = worklist.pop()
            node = by_id[node_id]
            facts = in_sets[node_id]
            if node.kind == "stmt" and node.stmt is not None:
                facts = transfer(node.stmt, facts)
            if node_id in visited and facts == out_sets[node_id]:
                continue  # fixpoint reached at this node
            visited.add(node_id)
            out_sets[node_id] = facts
            for succ in node.successors:
                merged = in_sets[succ] | facts
                if succ not in visited or merged != in_sets[succ]:
                    in_sets[succ] = merged
                    worklist.append(succ)
        return in_sets, out_sets


class _Builder:
    """Recursive-descent CFG construction over a statement list."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        # (break_targets, continue_targets) collectors, innermost last.
        self._loops: list[tuple[list[CFGNode], list[CFGNode]]] = []
        # Abnormal-exit nodes (return/raise) awaiting the innermost
        # enclosing ``finally`` suite, innermost collector last; with no
        # enclosing finally they connect straight to EXIT.
        self._finallies: list[list[CFGNode]] = []

    def _new(self, stmt: ast.stmt | None, kind: str = "stmt") -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    @staticmethod
    def _connect(sources: Sequence[CFGNode], target: CFGNode) -> None:
        for source in sources:
            if target.id not in source.successors:
                source.successors.append(target.id)

    def _abnormal_exit(self, node: CFGNode) -> None:
        """Route a return/raise through the innermost finally, or to EXIT."""
        if self._finallies:
            self._finallies[-1].append(node)
        else:
            self._connect([node], self.exit)

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self._sequence(body, [self.entry])
        self._connect(frontier, self.exit)
        return CFG(self.nodes, self.entry, self.exit)

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def _sequence(
        self, body: Sequence[ast.stmt], frontier: list[CFGNode]
    ) -> list[CFGNode]:
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._statement(stmt, frontier)
        return frontier

    def _statement(
        self, stmt: ast.stmt, frontier: list[CFGNode]
    ) -> list[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        node = self._new(stmt)
        self._connect(frontier, node)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._abnormal_exit(node)
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._loops[-1][1].append(node)
            return []
        return [node]

    def _if(self, stmt: ast.If, frontier: list[CFGNode]) -> list[CFGNode]:
        test = self._new(stmt)
        self._connect(frontier, test)
        then_frontier = self._sequence(stmt.body, [test])
        else_frontier = self._sequence(stmt.orelse, [test]) if stmt.orelse else [test]
        return [*then_frontier, *else_frontier]

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: list[CFGNode]
    ) -> list[CFGNode]:
        header = self._new(stmt)
        self._connect(frontier, header)
        breaks: list[CFGNode] = []
        continues: list[CFGNode] = []
        self._loops.append((breaks, continues))
        try:
            body_frontier = self._sequence(stmt.body, [header])
        finally:
            self._loops.pop()
        self._connect(body_frontier, header)  # back edge
        self._connect(continues, header)
        # Normal loop exit (condition false / iterator exhausted) runs
        # the else clause; break jumps past it.
        after = self._sequence(stmt.orelse, [header]) if stmt.orelse else [header]
        return [*after, *breaks]

    def _with(
        self, stmt: ast.With | ast.AsyncWith, frontier: list[CFGNode]
    ) -> list[CFGNode]:
        node = self._new(stmt)  # context-manager entry (item evaluation)
        self._connect(frontier, node)
        return self._sequence(stmt.body, [node])

    def _try(self, stmt: ast.Try, frontier: list[CFGNode]) -> list[CFGNode]:
        has_finally = bool(stmt.finalbody)
        abnormal: list[CFGNode] = []
        if has_finally:
            self._finallies.append(abnormal)
        first_inner = len(self.nodes)
        try:
            body_frontier = self._sequence(stmt.body, list(frontier))
            # A protected statement that raises did *not* complete, so
            # the exception edge must carry the facts *entering* it, not
            # its own effects (``handle = open(...)`` raising acquires
            # nothing).  Handlers and finally are therefore fed by the
            # predecessors of protected nodes — which include the
            # pre-try frontier via the existing edges into the first
            # protected statement.
            inner_ids = {
                n.id for n in self.nodes[first_inner:] if n.kind == "stmt"
            }
            raise_sources = [
                node
                for node in self.nodes
                if any(succ in inner_ids for succ in node.successors)
            ]
            # ``else`` runs only when the body did not raise; it is not
            # protected by the handlers.
            if stmt.orelse:
                body_frontier = self._sequence(stmt.orelse, body_frontier)
            merged = list(body_frontier)
            for handler in stmt.handlers:
                handler_frontier = self._sequence(
                    handler.body, list(raise_sources)
                )
                merged.extend(handler_frontier)
        finally:
            if has_finally:
                self._finallies.pop()
        if not has_finally:
            return merged
        # The finally suite runs on the normal paths, on the exception
        # path of every protected statement (even with no handler), and
        # on return/raise paths collected in ``abnormal``.
        fin_entry = [*merged, *abnormal]
        if not stmt.handlers:
            fin_entry.extend(raise_sources)
        fin_frontier = self._sequence(stmt.finalbody, fin_entry)
        if abnormal:
            # After the finally, a pending return/raise keeps propagating.
            for node in fin_frontier:
                self._abnormal_exit(node)
        return fin_frontier


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> CFG:
    """Build the CFG for one function body (or a module's top level)."""
    return _Builder().build(func.body)
