"""Finding baselines: land strict rules without a flag-day cleanup.

A baseline records, per ``(file, rule)`` pair, how many findings existed
when the baseline was written.  Applying it suppresses up to that many
findings for the pair and reports anything beyond — so pre-existing debt
stays visible in the checked-in baseline file while *new* code is held to
the strict standard immediately.

Counts, not line numbers, key the baseline: unrelated edits move lines
constantly, and a count survives them.  The trade-off is that within one
``(file, rule)`` bucket the specific surviving findings are chosen by
report order (the last ``excess`` entries), which is deterministic but
not attributable to a specific line.  Fixing any baselined finding lets
the count be ratcheted down with ``--update-baseline``.

Paths are canonicalised to their ``src``-anchored (or ``tests`` /
``benchmarks``-anchored) suffix so the same baseline matches whether the
tree is linted as ``src/repro`` from the repo root or by absolute path
from a test harness.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path, PurePosixPath
from typing import Sequence

from repro.lint.findings import Finding, sort_findings

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "apply_baseline",
    "canonical_path",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]

#: Conventional checked-in baseline location.
DEFAULT_BASELINE_PATH = ".reprolint-baseline.json"

_FORMAT_VERSION = 1

_ANCHORS = ("src", "tests", "benchmarks")


def canonical_path(path: str) -> str:
    """Anchor-relative posix form of a finding path (see module docs)."""
    parts = PurePosixPath(Path(path).as_posix()).parts
    for index, part in enumerate(parts):
        if part in _ANCHORS:
            return "/".join(parts[index:])
    return "/".join(parts)


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialise findings into the baseline document (stable JSON)."""
    counts: Counter[tuple[str, str]] = Counter(
        (canonical_path(f.path), f.rule_id) for f in findings
    )
    entries: dict[str, dict[str, int]] = {}
    for (path, rule_id), count in sorted(counts.items()):
        entries.setdefault(path, {})[rule_id] = count
    payload = {
        "tool": "reprolint",
        "version": _FORMAT_VERSION,
        "entries": entries,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    """Write the baseline document for ``findings`` to ``path``."""
    Path(path).write_text(render_baseline(findings), encoding="utf-8")


def load_baseline(path: str | Path) -> dict[tuple[str, str], int]:
    """Load a baseline into ``(canonical_path, rule_id) -> allowed count``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("tool") != "reprolint":
        raise ValueError(f"{path} is not a reprolint baseline document")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path} has baseline format version {payload.get('version')!r}; "
            f"this reprolint reads version {_FORMAT_VERSION}"
        )
    allowed: dict[tuple[str, str], int] = {}
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path} has a malformed 'entries' table")
    for file_path, rules in entries.items():
        for rule_id, count in rules.items():
            allowed[(str(file_path), str(rule_id))] = int(count)
    return allowed


def apply_baseline(
    findings: Sequence[Finding], allowed: dict[tuple[str, str], int]
) -> list[Finding]:
    """Findings that exceed their baseline budget, in report order."""
    grouped: dict[tuple[str, str], list[Finding]] = {}
    for finding in sort_findings(list(findings)):
        key = (canonical_path(finding.path), finding.rule_id)
        grouped.setdefault(key, []).append(finding)
    surviving: list[Finding] = []
    for key, group in grouped.items():
        budget = allowed.get(key, 0)
        if len(group) > budget:
            surviving.extend(group[budget:])
    return sort_findings(surviving)
