"""Physics / unit-safety rule pack (RL-P001..RL-P003).

The EM and energy layers of this reproduction juggle watts, dBm, joules
and metres; a silent unit slip produces plausible-looking nonsense rather
than a crash.  These rules catch the classic failure modes statically:
float equality in physical code, dB/watt arithmetic mixing, and physical
models constructed from unvalidated numbers.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import ModuleContext
from repro.lint.registry import Rule, register

__all__ = [
    "NoFloatEquality",
    "NoMixedDbWattArithmetic",
    "ValidatedPhysicalConstructors",
]

_DB_NAME = re.compile(r"(_db|_dbm|_dbi)$")
_WATT_NAME = re.compile(r"(_w|_mw|_uw|_kw|_watt|_watts)$")

#: Directories whose classes count as physical models for RL-P003.
_MODEL_DIRS = ("em", "mc", "network")


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is float


def _unit_classes(node: ast.AST) -> set[str]:
    """Unit classes ("db"/"watt") of identifiers in an arithmetic subtree.

    Descends through arithmetic and unary operators only: a ``Call``
    boundary is assumed to convert units (e.g. ``dbm_to_w(p_dbm)``), so
    its arguments are not inspected.
    """
    units: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        name: str | None = None
        if isinstance(current, ast.Name):
            name = current.id
        elif isinstance(current, ast.Attribute):
            name = current.attr
        elif isinstance(current, ast.BinOp):
            stack.extend((current.left, current.right))
        elif isinstance(current, ast.UnaryOp):
            stack.append(current.operand)
        if name is not None:
            if _DB_NAME.search(name):
                units.add("db")
            elif _WATT_NAME.search(name):
                units.add("watt")
    return units


class _PhysicsScopedRule(Rule):
    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test_code


@register
class NoFloatEquality(_PhysicsScopedRule):
    """RL-P001: exact float equality in physical code is almost always a
    rounding bug; use ``math.isclose`` or an explicit tolerance, or mark
    deliberate exact-zero sentinels with a suppression comment."""

    rule_id = "RL-P001"
    title = "no float equality in physical layers"
    node_types = (ast.Compare,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and (
            ctx.has_dir("em", "core") or ctx.path_endswith("network/energy.py")
        )

    def check(self, node: ast.Compare, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield node, (
                    f"float `{symbol}` comparison in physical code; use "
                    "math.isclose / an explicit tolerance, or suppress if "
                    "the exact sentinel is intended"
                )
                return


@register
class NoMixedDbWattArithmetic(_PhysicsScopedRule):
    """RL-P002: adding or subtracting a dB(-m/-i) quantity and a linear
    watt quantity mixes logarithmic and linear units — always a bug."""

    rule_id = "RL-P002"
    title = "no dB/watt mixed arithmetic"
    node_types = (ast.BinOp,)

    def check(self, node: ast.BinOp, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        left_units = _unit_classes(node.left)
        right_units = _unit_classes(node.right)
        if ("db" in left_units and "watt" in right_units) or (
            "watt" in left_units and "db" in right_units
        ):
            yield node, (
                "arithmetic mixes a dB-scaled identifier with a watt-scaled "
                "identifier; convert to one unit system first "
                "(e.g. dbm_to_w / w_to_dbm)"
            )


@register
class ValidatedPhysicalConstructors(_PhysicsScopedRule):
    """RL-P003: a physical model that defines a constructor must validate
    every float parameter through a ``utils.validation.check_*`` helper, so
    NaN/negative physics dies at the boundary with a clear message."""

    rule_id = "RL-P003"
    title = "physical constructors validate numeric parameters"
    node_types = (ast.ClassDef,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and ctx.has_dir(*_MODEL_DIRS)

    def check(self, node: ast.ClassDef, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        init = post_init = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name == "__init__":
                    init = stmt
                elif stmt.name == "__post_init__":
                    post_init = stmt
        if init is not None:
            required = {
                arg.arg
                for arg in (*init.args.posonlyargs, *init.args.args,
                            *init.args.kwonlyargs)
                if arg.annotation is not None
                and ast.unparse(arg.annotation) == "float"
            }
            yield from self._report(init, required, node.name)
        elif post_init is not None:
            fields = {
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and ast.unparse(stmt.annotation) == "float"
            }
            yield from self._report(post_init, fields, node.name)

    @staticmethod
    def _report(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        required: set[str],
        class_name: str,
    ) -> Iterator[tuple[ast.AST, str]]:
        if not required:
            return
        checked: set[str] = set()
        for inner in ast.walk(func):
            if not isinstance(inner, ast.Call):
                continue
            target = inner.func
            callee = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else ""
            )
            if not callee.startswith("check_"):
                continue
            for value in (*inner.args, *(kw.value for kw in inner.keywords)):
                for leaf in ast.walk(value):
                    if isinstance(leaf, ast.Name):
                        checked.add(leaf.id)
                    elif isinstance(leaf, ast.Attribute):
                        checked.add(leaf.attr)
        for missing in sorted(required - checked):
            yield func, (
                f"float parameter `{missing}` of physical model "
                f"`{class_name}` is never validated with a "
                "utils.validation.check_* helper"
            )
