"""Determinism rule pack (RL-D001..RL-D004).

The headline claim of this reproduction is only auditable if every
experiment is bit-reproducible from a seed.  These rules keep all
randomness flowing through :mod:`repro.utils.rng`: no hidden global RNG
state, no unseeded generators, no wall clocks, and a single shared seed
coercion helper instead of hand-copied ``isinstance`` ladders.

All rules in this pack skip test/benchmark modules: tests may exercise
forbidden constructs on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext
from repro.lint.registry import Rule, register

__all__ = [
    "NoHandRolledSeedCoercion",
    "NoLegacyGlobalRng",
    "NoUnseededDefaultRng",
    "NoWallClockSeeding",
]

#: numpy.random attributes that are *not* legacy global-state calls.
_NUMPY_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Sanctioned randomness plumbing: calling any of these satisfies RL-D004.
_COERCION_HELPERS = {"coerce_rng", "make_rng", "RngFactory"}


class _DeterminismRule(Rule):
    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test_code


@register
class NoLegacyGlobalRng(_DeterminismRule):
    """RL-D001: the ``random`` module and ``np.random.<func>`` draw from
    hidden global state, which breaks seed isolation between components."""

    rule_id = "RL-D001"
    title = "no legacy global-state RNG calls"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        name = ctx.resolve_call_name(node.func)
        if name is None:
            return
        if name.startswith("random."):
            yield node, (
                f"call to global-state stdlib RNG `{name}`; draw from a "
                "seeded numpy Generator (repro.utils.rng) instead"
            )
            return
        if name.startswith("numpy.random."):
            tail = name.removeprefix("numpy.random.")
            if "." not in tail and tail not in _NUMPY_RANDOM_ALLOWED:
                yield node, (
                    f"call to legacy numpy global RNG `{name}`; use a "
                    "Generator from repro.utils.rng instead"
                )


@register
class NoUnseededDefaultRng(_DeterminismRule):
    """RL-D002: ``np.random.default_rng()`` with no seed gives every run a
    different stream, so results cannot be reproduced or compared."""

    rule_id = "RL-D002"
    title = "default_rng must receive an explicit seed"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        name = ctx.resolve_call_name(node.func)
        if name != "numpy.random.default_rng":
            return
        if not node.args and not node.keywords:
            yield node, (
                "np.random.default_rng() without an explicit seed is "
                "irreproducible; pass a seed expression or use "
                "repro.utils.rng.make_rng"
            )


@register
class NoWallClockSeeding(_DeterminismRule):
    """RL-D003: wall-clock reads in simulation code smuggle real time into
    what must be a purely virtual-time, seed-determined world.

    Scope: :mod:`repro.campaign`, :mod:`repro.service` and
    :mod:`repro.lint` are exempt — campaign telemetry measures how long
    *real* trial executions take, the service's lease TTLs, heartbeats
    and usage ledger are wall-clock mechanisms by definition, and the
    linter times its own rule execution for ``--statistics``; none of
    these feed back into simulated time or seeds.
    """

    rule_id = "RL-D003"
    title = "no wall-clock time in simulation code"
    node_types = (ast.Call,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and not ctx.has_dir(
            "campaign", "service", "lint"
        )

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        name = ctx.resolve_call_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            yield node, (
                f"wall-clock call `{name}` in simulation code; simulation "
                "time must come from the engine clock and seeds from "
                "configuration"
            )


@register
class NoHandRolledSeedCoercion(_DeterminismRule):
    """RL-D004: `int | Generator` seed parameters must route through the
    shared helper ``repro.utils.rng.coerce_rng`` so all modules agree on
    coercion semantics (stream naming, type errors, pass-through)."""

    rule_id = "RL-D004"
    title = "seed parameters route through coerce_rng"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: ModuleContext) -> bool:
        # utils/rng.py *defines* the sanctioned coercion helper.
        return super().applies_to(ctx) and not ctx.path_endswith("utils/rng.py")

    def check(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, ctx: ModuleContext
    ) -> Iterator[tuple[ast.AST, str]]:
        params = {
            arg.arg: arg
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        }

        # (a) hand-rolled `isinstance(seed, np.random.Generator)` ladders.
        for inner in ast.walk(node):
            if not (isinstance(inner, ast.Call) and len(inner.args) == 2):
                continue
            if ctx.resolve_call_name(inner.func) != "isinstance":
                continue
            target, klass = inner.args
            if not (isinstance(target, ast.Name) and target.id in params):
                continue
            if ctx.resolve_call_name(klass) == "numpy.random.Generator":
                yield inner, (
                    f"hand-rolled seed coercion for `{target.id}`; use "
                    "repro.utils.rng.coerce_rng instead"
                )

        # (b) a `seed: int | Generator` parameter that is neither coerced
        # nor forwarded anywhere.
        seed_arg = params.get("seed")
        if seed_arg is None or seed_arg.annotation is None:
            return
        if "Generator" not in ast.unparse(seed_arg.annotation):
            return
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            name = ctx.resolve_call_name(inner.func)
            if name is not None and name.split(".")[-1] in _COERCION_HELPERS:
                return
            values = list(inner.args) + [kw.value for kw in inner.keywords]
            if any(isinstance(v, ast.Name) and v.id == "seed" for v in values):
                return  # forwarded to a callee that owns the coercion
        yield seed_arg, (
            "parameter `seed` accepts int | Generator but the body never "
            "coerces it (repro.utils.rng.coerce_rng) nor forwards it"
        )
