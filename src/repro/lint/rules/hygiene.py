"""API hygiene rule pack (RL-H001..RL-H005).

Language-level footguns that bite library consumers: shared mutable
defaults, exception handlers that swallow ``KeyboardInterrupt``, public
modules without an explicit export surface, signatures that shadow
builtins, and per-element Python loops feeding ``np.array`` in hot-path
numeric code.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.lint.engine import ModuleContext
from repro.lint.registry import Rule, register

__all__ = [
    "NoBareExcept",
    "NoBuiltinShadowing",
    "NoMutableDefaults",
    "NoScalarKernelListComp",
    "PublicModuleHasAll",
]

_MUTABLE_CALLS = {"list", "dict", "set"}

_BUILTIN_NAMES = frozenset(
    name for name in dir(builtins) if not name.startswith("_")
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _all_defaults(args: ast.arguments) -> list[ast.expr]:
    return [d for d in (*args.defaults, *args.kw_defaults) if d is not None]


def _all_params(args: ast.arguments) -> list[ast.arg]:
    extras = [a for a in (args.vararg, args.kwarg) if a is not None]
    return [*args.posonlyargs, *args.args, *args.kwonlyargs, *extras]


@register
class NoMutableDefaults(Rule):
    """RL-H001: a mutable default is evaluated once and shared by every
    call — mutation in one call leaks into all later calls."""

    rule_id = "RL-H001"
    title = "no mutable default arguments"
    node_types = _FUNCTION_NODES

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, _FUNCTION_NODES)
        for default in _all_defaults(node.args):
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
                and not default.args
                and not default.keywords
            )
            if mutable:
                yield default, (
                    "mutable default argument is shared across calls; "
                    "default to None and create the object in the body"
                )


@register
class NoBareExcept(Rule):
    """RL-H002: ``except:`` catches ``SystemExit``/``KeyboardInterrupt``
    and hides real bugs; catch ``Exception`` or something narrower."""

    rule_id = "RL-H002"
    title = "no bare except clauses"
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.ExceptHandler, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if node.type is None:
            yield node, (
                "bare `except:` swallows SystemExit and KeyboardInterrupt; "
                "catch Exception or a narrower type"
            )


@register
class PublicModuleHasAll(Rule):
    """RL-H003: a public module without ``__all__`` has an accidental API —
    every helper leaks into ``import *`` and the docs surface."""

    rule_id = "RL-H003"
    title = "public modules declare __all__"
    node_types = (ast.Module,)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test_code and not ctx.module_stem.startswith("_")

    def check(self, node: ast.Module, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            if any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
                return
        yield node, (
            "public module does not declare __all__; make the export "
            "surface explicit"
        )


@register
class NoScalarKernelListComp(Rule):
    """RL-H005: ``np.array([f(x) for x in xs])`` maps a scalar kernel over
    the data one Python call at a time and only then boxes the result —
    the EM and network hot paths must feed the whole array to the
    vectorized kernel instead.  Gathering plain attributes or tuples into
    an array is fine; the smell is a *call* per element."""

    rule_id = "RL-H005"
    title = "no per-element scalar-kernel loops into np.array"
    node_types = (ast.Call,)

    _ARRAY_BUILDERS = frozenset({"numpy.array", "numpy.asarray"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test_code and ctx.has_dir("em", "network")

    def check(self, node: ast.Call, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        if ctx.resolve_call_name(node.func) not in self._ARRAY_BUILDERS:
            return
        for arg in node.args[:1]:
            if isinstance(arg, (ast.ListComp, ast.GeneratorExp)) and isinstance(
                arg.elt, ast.Call
            ):
                yield arg, (
                    "array built by calling a scalar kernel per element; "
                    "pass the array to the vectorized kernel instead "
                    "(the repro.em batch APIs take ndarrays directly)"
                )


@register
class NoBuiltinShadowing(Rule):
    """RL-H004: a parameter named after a builtin (``id``, ``type``,
    ``filter``...) silently disables that builtin inside the function."""

    rule_id = "RL-H004"
    title = "no builtin shadowing in signatures"
    node_types = _FUNCTION_NODES

    def check(self, node: ast.AST, ctx: ModuleContext) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, _FUNCTION_NODES)
        for arg in _all_params(node.args):
            if arg.arg in _BUILTIN_NAMES:
                yield arg, (
                    f"parameter `{arg.arg}` shadows the builtin of the same "
                    "name; rename it (e.g. trailing underscore)"
                )
