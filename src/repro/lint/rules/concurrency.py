"""Concurrency & resource-safety rules (RL-C001..RL-C005).

The campaign service (PR 5) made the reproduction concurrent: worker
heartbeat threads, SIGTERM handlers, multiprocess fleets, a threaded
HTTP control plane, and shared SQLite state.  These rules police exactly
that surface:

* **RL-C001/C002/C003** are project rules on the
  :class:`~repro.lint.callgraph.CallGraph` context-reachability
  analysis.  They demand positive *sharing evidence* before reporting —
  a sqlite connection is only cross-thread if some single instance
  provably escapes onto another execution context (a bound
  ``self.method`` thread target, an instance stored on shared state) —
  so the service's open-one-connection-per-thread discipline is
  recognised as safe rather than baselined.
* **RL-C004/C005** are per-file rules (cached and ``--jobs``-parallel):
  RL-C004 runs the path-sensitive may-leak analysis on the per-function
  :mod:`~repro.lint.cfg` CFG; RL-C005 enforces thread-join and
  ``acquire``/``try/finally`` discipline syntactically, covering the
  exception edges the CFG deliberately does not model outside ``try``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import (
    CallGraph,
    ClassInfo,
    EntryPoint,
    FunctionInfo,
    _walk_scope,
    conflicting_pair,
)
from repro.lint.cfg import build_cfg
from repro.lint.engine import ModuleContext
from repro.lint.project import ModuleRecord, ProjectModel
from repro.lint.registry import (
    ProjectRule,
    Rule,
    register,
    register_project,
)

__all__ = [
    "AcquireWithoutRelease",
    "ResourceLeakOnPath",
    "SignalHandlerUnsafeCall",
    "SqliteCrossThread",
    "UnguardedSharedWrite",
]

_LOCK_CTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

_LOG_METHODS = {
    "debug", "info", "warning", "warn", "error", "exception", "critical", "log",
}

_THREADLIKE_CTORS = {
    "threading.Thread": "thread",
    "threading.Timer": "timer",
    "multiprocessing.Process": "process",
    "multiprocessing.context.Process": "process",
    "multiprocessing.process.Process": "process",
}


# ----------------------------------------------------------------------
# Shared class-shape helpers
# ----------------------------------------------------------------------
def _self_attr_assigns(
    info: FunctionInfo,
) -> Iterator[tuple[str, ast.expr | None, ast.stmt]]:
    """``self.attr = value`` statements in one method's own scope."""
    for node in info.scope_nodes:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value: ast.expr | None = node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, value, node


def _self_attr_refs(info: FunctionInfo) -> set[str]:
    """All ``self.<attr>`` names touched (read or written) by a method."""
    cached = getattr(info, "_self_refs", None)
    if cached is None:
        cached = {
            node.attr
            for node in info.scope_nodes
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        }
        info._self_refs = cached
    return cached


def _is_sqlite_connect(value: ast.expr | None, record: ModuleRecord) -> bool:
    """``sqlite3.connect(...)`` without ``check_same_thread=False``."""
    if not isinstance(value, ast.Call):
        return False
    if record.ctx.resolve_call_name(value.func) != "sqlite3.connect":
        return False
    for kw in value.keywords:
        if kw.arg == "check_same_thread":
            if isinstance(kw.value, ast.Constant) and kw.value.value is False:
                return False
    return True


def _method_infos(graph: CallGraph, cls: ClassInfo) -> list[FunctionInfo]:
    return [
        graph.functions[key]
        for key in cls.methods.values()
        if key in graph.functions
    ]


def _self_thread_entries(graph: CallGraph, cls: ClassInfo) -> list[EntryPoint]:
    """Thread entries whose target is a bound method of this class.

    A ``threading.Thread(target=self.m)`` inside the class means the
    *instance itself* escapes onto the new thread — the only statically
    certain single-instance sharing.  Process targets are excluded: the
    instance is pickled into the child, so memory is not shared.
    """
    method_keys = set(cls.methods.values())
    return [
        entry
        for entry in graph.entries
        if entry.kind == "thread" and entry.via_self and entry.key in method_keys
    ]


def _thread_side(
    graph: CallGraph, cls: ClassInfo, entry: EntryPoint
) -> set[str]:
    """Methods of ``cls`` that may run on the entry's thread."""
    method_keys = set(cls.methods.values())
    return ({entry.key} | graph.reachable_from(entry.key)) & method_keys


def _lock_attrs(graph: CallGraph, cls: ClassInfo) -> set[str]:
    """Attributes of the class assigned from ``threading`` lock ctors."""
    attrs: set[str] = set()
    for info in _method_infos(graph, cls):
        for attr, value, _node in _self_attr_assigns(info):
            if isinstance(value, ast.Call):
                resolved = info.record.ctx.resolve_call_name(value.func)
                if resolved in _LOCK_CTORS:
                    attrs.add(attr)
    return attrs


# ----------------------------------------------------------------------
# RL-C001 — sqlite connections must not cross threads
# ----------------------------------------------------------------------
@register_project
class SqliteCrossThread(ProjectRule):
    """RL-C001: sqlite3 connections are bound to their creating thread
    (``check_same_thread``); using one from another thread raises — or
    corrupts state if the check is disabled without locking.  Flagged on
    sharing evidence only: a connection-owning instance that escapes to
    a thread via a bound-method target, an owner instance stored on
    state whose readers span conflicting contexts, or a module-global
    connection touched from thread-reachable code.  Per-invocation
    connections (each thread opens its own) are recognised as safe."""

    rule_id = "RL-C001"
    title = "sqlite3 connections must not be shared across threads"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        graph = CallGraph.of(project)
        owners = self._connection_owners(graph)
        yield from self._check_self_escape(graph, owners)
        yield from self._check_stored_instances(graph, owners)
        yield from self._check_module_globals(graph, owners)

    # -- evidence helpers ----------------------------------------------
    def _connection_owners(
        self, graph: CallGraph
    ) -> dict[str, dict[str, ast.stmt]]:
        """class key -> {attr holding a thread-bound connection: site}."""
        owners: dict[str, dict[str, ast.stmt]] = {}
        for cls in graph.classes.values():
            if cls.record.is_test_code:
                continue
            attrs: dict[str, ast.stmt] = {}
            for info in _method_infos(graph, cls):
                for attr, value, node in _self_attr_assigns(info):
                    if _is_sqlite_connect(value, info.record):
                        attrs.setdefault(attr, node)
            if attrs:
                owners[cls.key] = attrs
        return owners

    def _check_self_escape(
        self, graph: CallGraph, owners: dict[str, dict[str, ast.stmt]]
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        for cls_key, attrs in owners.items():
            cls = graph.classes[cls_key]
            method_keys = set(cls.methods.values())
            for entry in _self_thread_entries(graph, cls):
                thread_side = _thread_side(graph, cls, entry)
                other_side = method_keys - thread_side
                for attr, site in attrs.items():
                    used_on_thread = any(
                        attr in _self_attr_refs(graph.functions[key])
                        for key in thread_side
                    )
                    used_elsewhere = any(
                        attr in _self_attr_refs(graph.functions[key])
                        for key in other_side
                    )
                    if used_on_thread and used_elsewhere:
                        entry_name = entry.key.rsplit(":", 1)[-1]
                        yield (
                            cls.record.path,
                            site,
                            f"sqlite3 connection `self.{attr}` of "
                            f"`{cls.qualname}` is created on one thread but "
                            f"also used by `{entry_name}`, which runs on its "
                            "own thread (Thread target bound to self); open "
                            "one connection per thread or pass "
                            "check_same_thread=False with explicit locking",
                        )

    def _check_stored_instances(
        self, graph: CallGraph, owners: dict[str, dict[str, ast.stmt]]
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        if not owners:
            return
        for cls in graph.classes.values():
            if cls.record.is_test_code:
                continue
            for info in _method_infos(graph, cls):
                for attr, value, node in _self_attr_assigns(info):
                    stored = _instance_class(graph, value, info)
                    if stored is None or stored.key not in owners:
                        continue
                    labels: set[str] = set()
                    for other in _method_infos(graph, cls):
                        if attr in _self_attr_refs(other):
                            labels |= graph.contexts_of(other.key)
                    pair = conflicting_pair(labels)
                    if pair is not None:
                        yield (
                            cls.record.path,
                            node,
                            f"`self.{attr}` stores a `{stored.qualname}` "
                            "instance owning a thread-bound sqlite3 "
                            f"connection, and is reachable from conflicting "
                            f"execution contexts ({pair[0]} vs {pair[1]}); "
                            "open one connection per thread instead",
                        )

    def _check_module_globals(
        self, graph: CallGraph, owners: dict[str, dict[str, ast.stmt]]
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        for record in graph.project:
            if record.is_test_code:
                continue
            for stmt in record.tree.body:
                if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                    continue
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                is_conn = _is_sqlite_connect(stmt.value, record)
                stored = (
                    _instance_class_in_record(graph, stmt.value, record)
                    if not is_conn
                    else None
                )
                if not is_conn and (stored is None or stored.key not in owners):
                    continue
                for key, info in graph.functions.items():
                    if info.record is not record:
                        continue
                    reads = any(
                        isinstance(node, ast.Name) and node.id == target.id
                        for node in info.scope_nodes
                    )
                    if not reads:
                        continue
                    labels = graph.contexts_of(key) | {"main"}
                    pair = conflicting_pair(labels)
                    if pair is not None:
                        yield (
                            record.path,
                            stmt,
                            f"module-global `{target.id}` holds a "
                            "thread-bound sqlite3 connection created at "
                            "import time (main thread) but is used from "
                            f"`{info.qualname}`, reachable on context "
                            f"{pair[0] if pair[0] != 'main' else pair[1]}; "
                            "open one connection per thread instead",
                        )
                        break


def _instance_class(
    graph: CallGraph, value: ast.expr | None, info: FunctionInfo
) -> ClassInfo | None:
    """Class whose instance ``value`` evaluates to, through one factory."""
    if not isinstance(value, ast.Call):
        return None
    direct = graph.resolve_class(value.func, info.record)
    if direct is not None:
        return direct
    factory = graph.resolve_callable(
        value.func, info.record, info.class_qual, None, info.qualname
    )
    if factory is None:
        return None
    for node in factory.scope_nodes:
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            made = graph.resolve_class(node.value.func, factory.record)
            if made is not None:
                return made
    return None


def _instance_class_in_record(
    graph: CallGraph, value: ast.expr | None, record: ModuleRecord
) -> ClassInfo | None:
    if not isinstance(value, ast.Call):
        return None
    return graph.resolve_class(value.func, record)


# ----------------------------------------------------------------------
# RL-C002 — shared mutable state written without a lock
# ----------------------------------------------------------------------
@register_project
class UnguardedSharedWrite(ProjectRule):
    """RL-C002: when a class provably shares one instance with a thread
    (a ``Thread(target=self.m)`` escape), attribute writes outside
    ``__init__`` that are read from the other side of the thread
    boundary race unless guarded by a ``with <lock>`` on a
    ``threading`` lock attribute.  Use a Lock, or coordinate through
    ``threading.Event`` (method calls, not attribute writes)."""

    rule_id = "RL-C002"
    title = "shared mutable state is written under a lock"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        graph = CallGraph.of(project)
        for cls in graph.classes.values():
            if cls.record.is_test_code:
                continue
            entries = _self_thread_entries(graph, cls)
            if not entries:
                continue
            locks = _lock_attrs(graph, cls)
            method_keys = set(cls.methods.values())
            for entry in entries:
                thread_side = _thread_side(graph, cls, entry)
                other_side = method_keys - thread_side
                for side, opposite in (
                    (thread_side, other_side),
                    (other_side, thread_side),
                ):
                    yield from self._check_side(
                        graph, cls, locks, side, opposite
                    )

    def _check_side(
        self,
        graph: CallGraph,
        cls: ClassInfo,
        locks: set[str],
        side: set[str],
        opposite: set[str],
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        opposite_refs: set[str] = set()
        for key in opposite:
            opposite_refs |= _self_attr_refs(graph.functions[key])
        for key in sorted(side):
            info = graph.functions[key]
            if info.name == "__init__":
                continue  # construction happens-before the thread starts
            for attr, node in _unguarded_self_writes(info, locks):
                if attr in locks or attr not in opposite_refs:
                    continue
                yield (
                    cls.record.path,
                    node,
                    f"`self.{attr}` of `{cls.qualname}` is written in "
                    f"`{info.name}` and read across a thread boundary "
                    "without a lock; guard the write with `with "
                    "self.<lock>:` or coordinate via threading.Event",
                )


def _unguarded_self_writes(
    info: FunctionInfo, locks: set[str]
) -> Iterator[tuple[str, ast.stmt]]:
    """``self.attr = ...`` statements not under a ``with <lock>`` guard."""

    def is_lock_guard(item: ast.withitem) -> bool:
        expr = item.context_expr
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in locks
        )

    def walk(stmts: list[ast.stmt], guarded: bool) -> Iterator[tuple[str, ast.stmt]]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if not guarded:
                    targets = (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            yield target.attr, stmt
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = guarded or any(is_lock_guard(i) for i in stmt.items)
                yield from walk(stmt.body, inner)
            elif isinstance(stmt, ast.Try):
                for suite in (stmt.body, stmt.orelse, stmt.finalbody):
                    yield from walk(suite, guarded)
                for handler in stmt.handlers:
                    yield from walk(handler.body, guarded)
            elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
                yield from walk(stmt.body, guarded)
                yield from walk(stmt.orelse, guarded)

    yield from walk(info.node.body, False)


# ----------------------------------------------------------------------
# RL-C003 — signal handlers must be async-signal-safe
# ----------------------------------------------------------------------
@register_project
class SignalHandlerUnsafeCall(ProjectRule):
    """RL-C003: a Python signal handler interrupts the main thread at an
    arbitrary bytecode boundary.  Calling logging (which takes a lock),
    acquiring locks, touching sqlite, or doing blocking I/O from code
    reachable from a ``signal.signal`` registration can deadlock or
    re-enter non-reentrant state.  Handlers should only set a flag or
    ``threading.Event`` and return."""

    rule_id = "RL-C003"
    title = "no non-reentrant calls reachable from signal handlers"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        graph = CallGraph.of(project)
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if info.record.is_test_code:
                continue
            signal_labels = sorted(
                label
                for label in graph.contexts_of(key)
                if label.startswith("signal:")
            )
            if not signal_labels:
                continue
            handler = signal_labels[0].split(":", 1)[1].rsplit(":", 1)[-1]
            loggers = _module_loggers(info.record)
            for node in info.scope_nodes:
                if not isinstance(node, ast.Call):
                    continue
                reason = _unsafe_in_handler(node, info.record, loggers)
                if reason is not None:
                    yield (
                        info.record.path,
                        node,
                        f"{reason} inside code reachable from signal "
                        f"handler `{handler}`; handlers are not "
                        "async-signal-safe call sites — set a flag or "
                        "threading.Event and act on it in the main loop",
                    )


def _module_loggers(record: ModuleRecord) -> set[str]:
    """Top-level names bound to ``logging.getLogger(...)``."""
    cached = getattr(record, "_logger_names", None)
    if cached is None:
        cached = set()
        for stmt in record.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                resolved = record.ctx.resolve_call_name(stmt.value.func)
                if resolved == "logging.getLogger":
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            cached.add(target.id)
        record._logger_names = cached
    return cached


def _unsafe_in_handler(
    call: ast.Call, record: ModuleRecord, loggers: set[str]
) -> str | None:
    resolved = record.ctx.resolve_call_name(call.func)
    if resolved is not None:
        if resolved.startswith("logging."):
            return f"logging call `{resolved}` (takes the logging lock)"
        if resolved.startswith("sqlite3."):
            return f"sqlite call `{resolved}`"
        if resolved in ("print", "builtins.print", "input", "builtins.input",
                        "open", "builtins.open"):
            return f"blocking I/O call `{resolved.rsplit('.', 1)[-1]}()`"
    if isinstance(call.func, ast.Attribute):
        receiver = call.func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in loggers
            and call.func.attr in _LOG_METHODS
        ):
            return (
                f"logging call `{receiver.id}.{call.func.attr}` "
                "(takes the logging lock)"
            )
        if call.func.attr == "acquire":
            return "lock acquisition"
    return None


# ----------------------------------------------------------------------
# RL-C004 — resources released on every CFG path
# ----------------------------------------------------------------------
_RESOURCE_CALLS = {
    "open": "open()",
    "builtins.open": "open()",
    "sqlite3.connect": "sqlite3.connect()",
    "socket.socket": "socket.socket()",
    "socket.create_connection": "socket.create_connection()",
}

_RELEASE_METHODS = {"close", "shutdown", "release", "terminate"}


@register
class ResourceLeakOnPath(Rule):
    """RL-C004: a file handle, sqlite connection, or socket bound to a
    local name must be released on *every* path out of the function —
    including early returns and the exception edges of any enclosing
    ``try``.  Solved as a forward may-leak dataflow problem on the
    per-function CFG; returning/yielding the handle or storing it on
    object state transfers ownership and is not a leak.  Prefer
    ``with``."""

    rule_id = "RL-C004"
    title = "resources are released on every path (prefer with)"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return not ctx.is_test_code

    def check(
        self, node: ast.AST, ctx: "ModuleContext"
    ) -> Iterator[tuple[ast.AST, str]]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        # Cheap gate: most functions acquire nothing, so skip the CFG
        # construction and fixpoint unless an acquisition site exists.
        if not any(
            isinstance(sub, ast.Call)
            and _acquisition_desc(sub, ctx) is not None
            for sub in ast.walk(node)
        ):
            return
        cfg = build_cfg(node)
        sites: dict[str, tuple[str, ast.stmt, str]] = {}

        def transfer(stmt: ast.stmt, facts: frozenset[str]) -> frozenset[str]:
            return _resource_transfer(stmt, facts, ctx, sites)

        in_sets, _out = cfg.forward_may(transfer)
        leaked = in_sets[cfg.exit.id]
        reported: set[int] = set()
        for fact in sorted(leaked):
            if fact not in sites:
                continue
            name, site, desc = sites[fact]
            if id(site) in reported:
                continue
            reported.add(id(site))
            yield (
                site,
                f"resource from {desc} bound to `{name}` may not be "
                "released on every path out of the function (early "
                "return, exception); use `with` or close it in a "
                "try/finally",
            )


def _acquisition_desc(call: ast.Call, ctx: "ModuleContext") -> str | None:
    resolved = ctx.resolve_call_name(call.func)
    if resolved in _RESOURCE_CALLS:
        return _RESOURCE_CALLS[resolved]
    if isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        root = call.func.value
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and (
            root.id in ctx.module_aliases or root.id in ctx.imported_names
        ):
            return None  # module-level open (gzip.open handled by name above)
        return ".open()"
    return None


def _names_in(expr: ast.AST | None) -> set[str]:
    if expr is None:
        return set()
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


def _kill(facts: set[str], name: str) -> None:
    for fact in [f for f in facts if f.startswith(f"{name}@")]:
        facts.discard(fact)


def _resource_transfer(
    stmt: ast.stmt,
    facts_in: frozenset[str],
    ctx: "ModuleContext",
    sites: dict[str, tuple[str, ast.stmt, str]],
) -> frozenset[str]:
    facts = set(facts_in)
    # Context-manager entry: `with name:` / `with closing(name):` is the
    # release; `with open(...) as f:` is managed and never tracked.
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                _kill(facts, expr.id)
            elif isinstance(expr, ast.Call):
                resolved = ctx.resolve_call_name(expr.func)
                if resolved in ("contextlib.closing", "closing"):
                    for name in _names_in(expr):
                        _kill(facts, name)
        return frozenset(facts)
    # Ownership transfer out of the function.
    if isinstance(stmt, ast.Return):
        for name in _names_in(stmt.value):
            _kill(facts, name)
        return frozenset(facts)
    if isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, (ast.Yield, ast.YieldFrom, ast.Await)
    ):
        for name in _names_in(stmt.value):
            _kill(facts, name)
        return frozenset(facts)
    if isinstance(stmt, ast.Delete):
        for name in _names_in(stmt):
            _kill(facts, name)
        return frozenset(facts)
    # Nested defs capture by closure: ownership becomes non-local.
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        for name in {
            n.id for n in ast.walk(stmt) if isinstance(n, ast.Name)
        }:
            _kill(facts, name)
        return frozenset(facts)
    exprs = _evaluated_exprs(stmt)
    # Releases: name.close()/shutdown()/release() anywhere in the stmt.
    for expr in exprs:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE_METHODS
                and isinstance(node.func.value, ast.Name)
            ):
                _kill(facts, node.func.value.id)
    # Assignments: acquisitions, aliases, and escapes to object state.
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        value = stmt.value
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if isinstance(value, ast.Name):
            _kill(facts, value.id)  # aliased: lifetime no longer tracked
        for target in targets:
            if isinstance(target, ast.Name):
                _kill(facts, target.id)  # rebinding drops the old resource
                if isinstance(value, ast.Call):
                    desc = _acquisition_desc(value, ctx)
                    if desc is not None:
                        fact = f"{target.id}@{stmt.lineno}:{stmt.col_offset}"
                        sites[fact] = (target.id, stmt, desc)
                        facts.add(fact)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                for name in _names_in(value):
                    _kill(facts, name)  # stored on longer-lived state
    return frozenset(facts)


def _evaluated_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """Expressions evaluated *at* a CFG node for a (compound) statement."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


# ----------------------------------------------------------------------
# RL-C005 — thread-join and acquire/try-finally discipline
# ----------------------------------------------------------------------
@register
class AcquireWithoutRelease(Rule):
    """RL-C005: a non-daemon thread/process that is started but never
    joined in its creating scope (and never handed to the caller)
    outlives the function invisibly; a bare ``lock.acquire()`` without
    an immediate ``try/finally: release()`` deadlocks every other
    thread if anything in between raises.  ``with lock:`` and daemon
    threads are the sanctioned idioms."""

    rule_id = "RL-C005"
    title = "threads are joined; acquire is paired with try/finally release"
    node_types = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return not ctx.is_test_code

    def check(
        self, node: ast.AST, ctx: "ModuleContext"
    ) -> Iterator[tuple[ast.AST, str]]:
        body = node.body  # type: ignore[attr-defined]
        scope = list(_walk_scope(body))
        yield from self._check_threads(scope, ctx)
        findings: list[tuple[str, ast.Call]] = []
        _check_acquires(body, frozenset(), findings)
        for receiver, call in findings:
            yield (
                call,
                f"`{receiver}.acquire()` without a guaranteed release: "
                "follow it immediately with try/finally calling "
                f"`{receiver}.release()`, or use `with {receiver}:`",
            )

    def _check_threads(
        self, scope: list[ast.AST], ctx: "ModuleContext"
    ) -> Iterator[tuple[ast.AST, str]]:
        created: dict[str, tuple[ast.stmt, str]] = {}
        started: set[str] = set()
        joined: set[str] = set()
        escaped: set[str] = set()
        for node in scope:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                    resolved = ctx.resolve_call_name(value.func)
                    kind = _THREADLIKE_CTORS.get(resolved or "")
                    if kind is not None and not _is_daemon(value):
                        created[target.id] = (node, kind)
                        continue
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for name in _names_in(node.value):
                        escaped.add(name)
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    name = node.func.value.id
                    if node.func.attr == "start":
                        started.add(name)
                        continue
                    if node.func.attr in ("join", "cancel"):
                        joined.add(name)
                        continue
                # A thread passed to any other call (list.append, a
                # registry, ...) is owned elsewhere — not this scope's
                # join responsibility.
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    escaped.update(_names_in(arg))
            elif isinstance(node, ast.Return):
                escaped.update(_names_in(node.value))
        for name, (site, kind) in created.items():
            if name in started and name not in joined and name not in escaped:
                yield (
                    site,
                    f"{kind} `{name}` is started but never joined in this "
                    "scope and never handed to a caller; join it (with a "
                    "timeout) or mark it daemon=True if fire-and-forget "
                    "is intended",
                )


def _is_daemon(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "daemon":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return False


def _dotted_text(expr: ast.AST) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted_text(expr.value)
        return f"{base}.{expr.attr}" if base else None
    return None


def _acquire_calls(stmt: ast.stmt) -> list[tuple[str, ast.Call]]:
    """``<receiver>.acquire(...)`` calls evaluated at this statement."""
    out: list[tuple[str, ast.Call]] = []
    for expr in _evaluated_exprs(stmt):
        if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                receiver = _dotted_text(node.func.value)
                if receiver is not None:
                    out.append((receiver, node))
    return out


def _finally_releases(try_stmt: ast.Try) -> frozenset[str]:
    out: set[str] = set()
    for node in _walk_scope(try_stmt.finalbody):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
        ):
            receiver = _dotted_text(node.func.value)
            if receiver is not None:
                out.add(receiver)
    return frozenset(out)


def _check_acquires(
    stmts: list[ast.stmt],
    protected: frozenset[str],
    out: list[tuple[str, ast.Call]],
) -> None:
    for index, stmt in enumerate(stmts):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for receiver, call in _acquire_calls(stmt):
            if receiver in protected:
                continue
            following = stmts[index + 1] if index + 1 < len(stmts) else None
            if isinstance(following, ast.Try) and receiver in _finally_releases(
                following
            ):
                continue
            out.append((receiver, call))
        if isinstance(stmt, ast.Try):
            inner = protected | _finally_releases(stmt)
            _check_acquires(stmt.body, inner, out)
            _check_acquires(stmt.orelse, inner, out)
            for handler in stmt.handlers:
                _check_acquires(handler.body, inner, out)
            _check_acquires(stmt.finalbody, protected, out)
        elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
            _check_acquires(stmt.body, protected, out)
            _check_acquires(stmt.orelse, protected, out)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            _check_acquires(stmt.body, protected, out)
