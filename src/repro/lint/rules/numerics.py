"""Array-semantics rules (RL-N001..RL-N005).

PRs 3 and 8 turned the hot paths into NumPy SoA kernels whose results
must stay bit-for-bit faithful to the paper's tables, and the bug
classes that silently break that fidelity are array-semantic: dtype
narrowing, unintended broadcasting, in-place writes through views,
empty-array reductions, and integer overflow in grid-key arithmetic.

All five rules are thin project rules over the shared
:class:`~repro.lint.arrays.ArrayAnalysis` — the abstract interpreter
runs once per function (CFG fixpoint + reporting pass) and each rule
filters its event kind, so adding a rule never adds an interpretation:

* **RL-N001** silent dtype narrowing on a float64-carrying path
  (``astype(np.float32)``, narrowing ``asarray(dtype=...)``, int/int
  true division, mixed-dtype ``np.where``), scoped to the bit-for-bit
  layers ``em/``, ``network/``, ``core/``, ``twin/``;
* **RL-N002** unintended broadcast — binary ops whose symbolic shapes
  unify only by stretching *both* operands (the ``(N,) op (N, 1)``
  outer-product blowup), unless an operand carries an explicit
  axis-insertion (``[:, None]``, ``keepdims=True``);
* **RL-N003** in-place mutation of a value whose may-alias set reaches
  a function parameter or another live local through a view chain —
  the exact bug class the spatial-grid half-neighbourhood join dodges;
* **RL-N004** unguarded reductions (``min``/``max``/``argmin``/
  ``mean``/...) over arrays that may be empty along the reduced axis,
  with no dominating size guard;
* **RL-N005** overflow-prone integer index arithmetic — products/sums
  of int32/platform-int values (composite grid keys) without an
  ``np.int64`` cast.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.arrays import iter_module_events
from repro.lint.project import ModuleRecord, ProjectModel
from repro.lint.registry import ProjectRule, register_project

__all__ = [
    "AliasedInPlaceWrite",
    "DtypeNarrowing",
    "PlatformIntOverflow",
    "UnguardedEmptyReduction",
    "UnintendedBroadcast",
]


class _ArrayEventRule(ProjectRule):
    """Report every :class:`~repro.lint.arrays.ArrayEvent` of one kind."""

    #: Event kind this rule consumes from the shared analysis.
    event_kind: ClassVar[str] = ""

    def _applies_to(self, record: ModuleRecord) -> bool:
        return not record.is_test_code

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        for record in sorted(project, key=lambda r: r.path):
            if not self._applies_to(record):
                continue
            for event in iter_module_events(project, record, self.event_kind):
                yield record.path, event.node, event.message


@register_project
class DtypeNarrowing(_ArrayEventRule):
    """RL-N001: no silent dtype narrowing on float64-carrying paths.

    The equivalence contract (exp01-04 tables, grid-vs-dense bitwise
    tests) holds only while every arithmetic step stays float64; one
    ``astype(np.float32)`` — or an int/int true division whose float64
    result masks an intended integer path — quietly diverges the tables
    by an ulp that snowballs across 10^6-event runs.  Scoped to the
    bit-for-bit layers; analysis code outside them may downcast freely.
    """

    rule_id = "RL-N001"
    title = "silent dtype narrowing on a float64-carrying path"
    event_kind = "narrow"

    def _applies_to(self, record: ModuleRecord) -> bool:
        return not record.is_test_code and record.ctx.has_dir(
            "em", "network", "core", "twin"
        )


@register_project
class UnintendedBroadcast(_ArrayEventRule):
    """RL-N002: no mutual-stretch broadcasts.

    ``(N,) op (N, 1)`` silently materialises ``(N, N)`` — 80 GB at
    N = 10^5 — and usually signals a missing axis rather than an
    intended outer product.  Deliberate outer products announce
    themselves with an explicit axis insertion (``x[:, None]``,
    ``keepdims=True``), which the analysis tracks and exempts.
    """

    rule_id = "RL-N002"
    title = "binary op broadcasts by stretching both operands"
    event_kind = "broadcast"


@register_project
class AliasedInPlaceWrite(_ArrayEventRule):
    """RL-N003: no in-place writes through a may-alias of live data.

    Slicing, ``reshape``, ``ravel`` and ``.T`` return *views*; an
    in-place write through one (``arr[...] =``, ``+=``, ``out=``,
    ``.fill``/``.sort``) also rewrites the parameter or sibling local
    it aliases.  The spatial-grid half-neighbourhood join exists
    precisely because a careless in-place variant corrupted shared key
    arrays — this rule makes that review lesson mechanical.
    """

    rule_id = "RL-N003"
    title = "in-place mutation of a value aliasing live data"
    event_kind = "alias-write"


@register_project
class UnguardedEmptyReduction(_ArrayEventRule):
    """RL-N004: reductions over possibly-empty arrays need a size guard.

    ``min``/``max``/``argmin``/``mean`` raise ``ValueError`` on an
    empty operand, and empty inputs are routine here (a depleted
    network has no live nodes; a fresh route has no visits).  The rule
    fires when the reduced axis may be zero — a 0 literal, a size
    symbol with no positivity evidence, or externally supplied data —
    and no dominating ``len(x)``/``x.size``/``x.any()`` guard protects
    the reduction.
    """

    rule_id = "RL-N004"
    title = "unguarded reduction over a possibly-empty array"
    event_kind = "empty-reduce"


@register_project
class PlatformIntOverflow(_ArrayEventRule):
    """RL-N005: widen platform-int index arithmetic before it overflows.

    ``np.arange``'s default dtype is the *platform* int — 32-bit on
    32-bit builds — and composite grid keys (``cx * stride + cy``)
    exceed 2^31 beyond ~10^5 cells per side.  Products and sums of
    int32/platform-int operands must cast through ``np.int64`` first,
    as the spatial index's key decomposition already does.
    """

    rule_id = "RL-N005"
    title = "overflow-prone platform-int index arithmetic"
    event_kind = "int-overflow"
