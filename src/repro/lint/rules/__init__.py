"""Built-in reprolint rule packs.

Importing this package registers every shipped rule with the global
registry (see :mod:`repro.lint.registry`).
"""

from repro.lint.rules import determinism, hygiene, physics

__all__ = ["determinism", "hygiene", "physics"]
