"""Built-in reprolint rule packs.

Importing this package registers every shipped rule with the global
registry (see :mod:`repro.lint.registry`).  The rule classes themselves
are re-exported so tooling (and tests) can reference a rule without
knowing which pack module defines it.
"""

from repro.lint.rules import concurrency, determinism, hygiene, numerics, physics
from repro.lint.rules.concurrency import (
    AcquireWithoutRelease,
    ResourceLeakOnPath,
    SignalHandlerUnsafeCall,
    SqliteCrossThread,
    UnguardedSharedWrite,
)
from repro.lint.rules.determinism import (
    NoHandRolledSeedCoercion,
    NoLegacyGlobalRng,
    NoUnseededDefaultRng,
    NoWallClockSeeding,
)
from repro.lint.rules.numerics import (
    AliasedInPlaceWrite,
    DtypeNarrowing,
    PlatformIntOverflow,
    UnguardedEmptyReduction,
    UnintendedBroadcast,
)
from repro.lint.rules.hygiene import (
    NoBareExcept,
    NoBuiltinShadowing,
    NoMutableDefaults,
    NoScalarKernelListComp,
    PublicModuleHasAll,
)
from repro.lint.rules.physics import (
    NoFloatEquality,
    NoMixedDbWattArithmetic,
    ValidatedPhysicalConstructors,
)

__all__ = [
    "AcquireWithoutRelease",
    "AliasedInPlaceWrite",
    "DtypeNarrowing",
    "NoBareExcept",
    "NoBuiltinShadowing",
    "NoFloatEquality",
    "NoHandRolledSeedCoercion",
    "NoLegacyGlobalRng",
    "NoMixedDbWattArithmetic",
    "NoMutableDefaults",
    "NoScalarKernelListComp",
    "NoUnseededDefaultRng",
    "NoWallClockSeeding",
    "PlatformIntOverflow",
    "PublicModuleHasAll",
    "ResourceLeakOnPath",
    "SignalHandlerUnsafeCall",
    "SqliteCrossThread",
    "UnguardedEmptyReduction",
    "UnguardedSharedWrite",
    "UnintendedBroadcast",
    "ValidatedPhysicalConstructors",
    "concurrency",
    "determinism",
    "hygiene",
    "numerics",
    "physics",
]
