"""reprolint — domain-aware static analysis for the reproduction.

An AST-based lint engine with rule packs tailored to this codebase:

* **determinism** (``RL-D...``): no legacy global-state RNG, no unseeded
  generators, no wall-clock seeding, seed plumbing through
  :func:`repro.utils.rng.coerce_rng`;
* **physics / unit-safety** (``RL-P...``): no float equality in the
  physical layers, no dBm/watt arithmetic mixing, validated numeric
  constructor parameters;
* **API hygiene** (``RL-H...``): no mutable defaults, no bare ``except``,
  ``__all__`` in public modules, no builtin shadowing in signatures.

Run it as ``python -m repro lint [paths]`` or programmatically via
:func:`lint_paths` / :func:`lint_source`.  Findings on a line carrying a
``# reprolint: disable=RL-XXXX`` comment are suppressed.
"""

from repro.lint.engine import LintEngine, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register
from repro.lint.reporting import render_json, render_text

__all__ = [
    "Finding",
    "LintEngine",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
