"""reprolint — domain-aware static analysis for the reproduction.

An AST-based lint engine with rule packs tailored to this codebase:

* **determinism** (``RL-D...``): no legacy global-state RNG, no unseeded
  generators, no wall-clock seeding, seed plumbing through
  :func:`repro.utils.rng.coerce_rng`, and cross-module RNG-taint rules
  (raw Generators crossing module boundaries, unvalidated external
  seeds);
* **physics / unit-safety** (``RL-P...``): no float equality in the
  physical layers, no dBm/watt arithmetic mixing (suffix-level and
  inferred across assignments/call boundaries), validated numeric
  constructor parameters;
* **API hygiene** (``RL-H...``): no mutable defaults, no bare ``except``,
  ``__all__`` in public modules (and only real, consumed names in it),
  no builtin shadowing in signatures, no top-level import cycles.

* **concurrency / resource safety** (``RL-C...``): sqlite connections
  crossing threads, unguarded shared writes, non-reentrant calls in
  signal handlers, CFG may-leak of handles/connections/sockets, and
  thread-join / ``acquire``-``try/finally`` discipline — built on a
  project-wide call graph with thread/signal/process entry-point
  reachability (:mod:`repro.lint.callgraph`) and per-function CFGs
  (:mod:`repro.lint.cfg`).

Per-file rules see one module; *project* rules (:mod:`repro.lint.flow`,
:mod:`repro.lint.rules.concurrency`)
see the whole tree through :class:`repro.lint.project.ProjectModel`.
Run it as ``python -m repro lint [paths]`` or programmatically via
:func:`lint_paths` / :func:`lint_source` / :func:`lint_sources`.
Findings on a line carrying a ``# reprolint: disable=RL-XXXX`` comment —
any physical line of the offending statement — are suppressed.

Production niceties: a content-addressed per-file result cache
(:mod:`repro.lint.cache`), a process-pool parallel mode, a SARIF 2.1.0
renderer for code scanning, and count-based baselines
(:mod:`repro.lint.baseline`) so new rules land strict-for-new-code.
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.callgraph import CallGraph, EntryPoint, conflict
from repro.lint.cfg import CFG, CFGNode, build_cfg
from repro.lint.engine import LintEngine, lint_paths, lint_source, lint_sources
from repro.lint.findings import Finding
from repro.lint.flow import (
    CrossModuleUnitMix,
    ExportSurfaceIntegrity,
    ExternalSeedTaint,
    NoImportCycles,
    RawGeneratorCrossesModules,
)
from repro.lint.project import ProjectModel
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_rule,
    register,
    register_project,
)
from repro.lint.reporting import (
    render_json,
    render_sarif,
    render_statistics,
    render_text,
)

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "CrossModuleUnitMix",
    "EntryPoint",
    "ExportSurfaceIntegrity",
    "ExternalSeedTaint",
    "Finding",
    "LintCache",
    "LintEngine",
    "NoImportCycles",
    "ProjectModel",
    "ProjectRule",
    "RawGeneratorCrossesModules",
    "Rule",
    "all_project_rules",
    "all_rules",
    "apply_baseline",
    "build_cfg",
    "conflict",
    "get_rule",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_baseline",
    "register",
    "register_project",
    "render_json",
    "render_sarif",
    "render_statistics",
    "render_text",
    "write_baseline",
]
