"""Cross-module flow-analysis passes (RL-D005/D006, RL-P004, RL-H006/H007).

These rules run on the whole :class:`~repro.lint.project.ProjectModel`
rather than one file at a time, so they can see a raw RNG handed across a
call boundary, a dBm value returned from one module and summed as watts
in another, an export that no other module consumes, or an import cycle —
none of which a per-file AST walk can detect.

The passes are deliberately flow-*insensitive* inside a scope (names are
classified by every binding they receive, with conflicts resolving to
"unknown") and inter-procedural only through statically resolvable dotted
names: the same ``resolve_call_name`` machinery the per-file rules use.
That keeps them fast, deterministic, and free of false positives from
dynamic dispatch, at the cost of missing aliased flows.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.project import ModuleRecord, ProjectModel
from repro.lint.registry import ProjectRule, register_project
from repro.lint.rules.physics import _DB_NAME, _WATT_NAME, _unit_classes

__all__ = [
    "CrossModuleUnitMix",
    "ExportSurfaceIntegrity",
    "ExternalSeedTaint",
    "NoImportCycles",
    "RawGeneratorCrossesModules",
]


# ----------------------------------------------------------------------
# Scope utilities shared by the dataflow passes
# ----------------------------------------------------------------------
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _walk_scope(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes of one lexical scope, not descending into nested defs."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                continue
            stack.append(child)


def _scopes(
    record: ModuleRecord,
) -> list[tuple[ast.FunctionDef | ast.AsyncFunctionDef | None, list[ast.AST]]]:
    """``(function_or_None, scope_nodes)`` for the module and every def.

    Every flow pass iterates the same scopes, so the walk is done once
    per record and memoised on it; the node lists are shared read-only.
    """
    cached = getattr(record, "_flow_scopes", None)
    if cached is None:
        cached = [(None, list(_walk_scope(record.tree.body)))]
        for node in ast.walk(record.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cached.append((node, list(_walk_scope(node.body))))
        record._flow_scopes = cached
        record._flow_scope_index = {id(fn): nodes for fn, nodes in cached}
    return cached


def _scope_nodes(
    record: ModuleRecord,
    fn: ast.FunctionDef | ast.AsyncFunctionDef | None,
) -> list[ast.AST]:
    """The memoised node list for one scope of ``record``."""
    _scopes(record)
    return record._flow_scope_index[id(fn)]


def _assigned_names(stmt: ast.AST) -> list[str]:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
    return names


def _callee_tail(call: ast.Call, record: ModuleRecord) -> str:
    """Last dotted component of a call target, resolved when possible."""
    resolved = record.ctx.resolve_call_name(call.func)
    if resolved:
        return resolved.rsplit(".", 1)[-1]
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _cross_module_target(
    call: ast.Call, record: ModuleRecord, project: ProjectModel
) -> tuple[str, ModuleRecord] | None:
    """Resolve a call to a *different* project module, if statically possible."""
    resolved = record.ctx.resolve_call_name(call.func)
    owner = project.module_of(resolved)
    if owner is None or owner.name == record.name or resolved is None:
        return None
    return resolved, owner


# ----------------------------------------------------------------------
# RL-D005 — raw Generators must not cross module boundaries
# ----------------------------------------------------------------------
_STREAM_DERIVERS = {"coerce_rng", "make_rng", "stream", "child", "spawn"}


@register_project
class RawGeneratorCrossesModules(ProjectRule):
    """RL-D005: a ``np.random.default_rng`` Generator created in one
    component and handed to a function in another module couples the two
    components to one stream — adding a draw to either silently perturbs
    the other.  Cross-module randomness must be derived through
    ``coerce_rng`` / ``make_rng`` / ``RngFactory.stream`` so each
    component owns an independent named stream."""

    rule_id = "RL-D005"
    title = "raw Generators must not cross module boundaries"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        for record in project:
            if record.is_test_code:
                continue
            for _fn, nodes in _scopes(record):
                yield from self._check_scope(record, project, nodes)

    def _check_scope(
        self, record: ModuleRecord, project: ProjectModel, nodes: list[ast.AST]
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        raw: set[str] = set()
        sanctioned: set[str] = set()
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                resolved = record.ctx.resolve_call_name(value.func)
                tail = _callee_tail(value, record)
                if resolved == "numpy.random.default_rng":
                    raw.update(_assigned_names(node))
                elif tail in _STREAM_DERIVERS:
                    sanctioned.update(_assigned_names(node))
        raw -= sanctioned
        if not raw:
            return
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            target = _cross_module_target(node, record, project)
            if target is None:
                continue
            resolved, _owner = target
            values = [*node.args, *(kw.value for kw in node.keywords)]
            for value in values:
                if isinstance(value, ast.Name) and value.id in raw:
                    yield (
                        record.path,
                        node,
                        f"raw default_rng Generator `{value.id}` crosses the "
                        f"module boundary into `{resolved}`; derive an "
                        "independent named stream instead "
                        "(repro.utils.rng.coerce_rng / RngFactory.stream)",
                    )


# ----------------------------------------------------------------------
# RL-D006 — seeds from external input must be validated
# ----------------------------------------------------------------------
_TAINT_PASSTHROUGH = {"int", "float", "str", "abs", "min", "max", "round"}
_SEED_NAME = re.compile(r"(^|_)seed$")
_EXTERNAL_CONTAINERS = {"os.environ", "sys.argv"}
_EXTERNAL_CALLS = {"os.getenv", "os.environ.get", "input", "builtins.input"}


def _is_sanitizer(tail: str) -> bool:
    return tail.startswith("check_") or tail in {"coerce_rng", "make_rng"}


def _is_taint_source(node: ast.AST, record: ModuleRecord) -> bool:
    if isinstance(node, ast.Subscript):
        return _is_taint_source(node.value, record)
    if isinstance(node, (ast.Attribute, ast.Name)):
        resolved = record.ctx.resolve_call_name(node)
        return resolved in _EXTERNAL_CONTAINERS
    if isinstance(node, ast.Call):
        resolved = record.ctx.resolve_call_name(node.func)
        return resolved in _EXTERNAL_CALLS
    return False


def _is_tainted(node: ast.AST, tainted: set[str], record: ModuleRecord) -> bool:
    if _is_taint_source(node, record):
        return True
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Subscript):
        return _is_tainted(node.value, tainted, record)
    if isinstance(node, ast.Call):
        tail = _callee_tail(node, record)
        if _is_sanitizer(tail):
            return False
        if tail in _TAINT_PASSTHROUGH:
            values = [*node.args, *(kw.value for kw in node.keywords)]
            return any(_is_tainted(v, tainted, record) for v in values)
        return False  # an unknown call boundary is assumed to transform
    if isinstance(node, ast.BinOp):
        return _is_tainted(node.left, tainted, record) or _is_tainted(
            node.right, tainted, record
        )
    if isinstance(node, ast.UnaryOp):
        return _is_tainted(node.operand, tainted, record)
    if isinstance(node, ast.IfExp):
        return _is_tainted(node.body, tainted, record) or _is_tainted(
            node.orelse, tainted, record
        )
    return False


@register_project
class ExternalSeedTaint(ProjectRule):
    """RL-D006: a seed read from the environment, argv, or stdin that
    reaches simulation state without validation makes a run silently
    irreproducible (typos, empty strings, out-of-range values).  External
    seeds must pass through a ``utils.validation.check_*`` helper (or the
    coercion helpers, which type-check) before use."""

    rule_id = "RL-D006"
    title = "external-input seeds are validated before use"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        for record in project:
            if record.is_test_code:
                continue
            for _fn, nodes in _scopes(record):
                yield from self._check_scope(record, project, nodes)

    def _check_scope(
        self, record: ModuleRecord, project: ProjectModel, nodes: list[ast.AST]
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        tainted: set[str] = set()
        for _ in range(2):  # fixpoint over unordered flow-insensitive bindings
            before = len(tainted)
            for node in nodes:
                if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value:
                    if _is_tainted(node.value, tainted, record):
                        tainted.update(_assigned_names(node))
            if len(tainted) == before:
                break
        for node in nodes:
            if isinstance(node, ast.Call):
                yield from self._check_call(record, project, node, tainted)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value:
                yield from self._check_state_write(record, node, tainted)

    def _check_call(
        self,
        record: ModuleRecord,
        project: ProjectModel,
        call: ast.Call,
        tainted: set[str],
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        sink: str | None = None
        for kw in call.keywords:
            if kw.arg and _SEED_NAME.search(kw.arg):
                if _is_tainted(kw.value, tainted, record):
                    sink = f"{kw.arg}="
                    break
        if sink is None:
            resolved = record.ctx.resolve_call_name(call.func)
            target = project.resolve_function(resolved)
            if target is None and resolved is not None:
                # A class call binds its __init__; resolve constructors too.
                owner = project.resolve_symbol(resolved)
                if owner is not None:
                    rec, symbol = owner
                    ctor = rec.functions.get(f"{symbol}.__init__")
                    target = (rec, ctor) if ctor is not None else None
            if target is not None:
                _rec, fn = target
                params = [a.arg for a in (*fn.args.posonlyargs, *fn.args.args)]
                if params and params[0] in ("self", "cls"):
                    params = params[1:]
                for value, param in zip(call.args, params):
                    if _SEED_NAME.search(param) and _is_tainted(
                        value, tainted, record
                    ):
                        sink = f"parameter `{param}` of `{resolved}`"
                        break
        if sink is not None:
            yield (
                record.path,
                call,
                f"seed derived from external input (os.environ / sys.argv / "
                f"input) reaches {sink} unvalidated; pass it through a "
                "utils.validation check_* helper or coerce_rng first",
            )

    def _check_state_write(
        self,
        record: ModuleRecord,
        node: ast.Assign | ast.AnnAssign,
        tainted: set[str],
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = None
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
            if name is None or not _SEED_NAME.search(name):
                continue
            if isinstance(target, ast.Name) and node.value is not None:
                # plain `seed = ...` bindings are flagged only when stored
                # into object state (attributes); locals get flagged at the
                # call sink where they actually enter the simulation.
                continue
            if node.value is not None and _is_tainted(node.value, tainted, record):
                yield (
                    record.path,
                    node,
                    f"external-input seed stored unvalidated into `{name}`; "
                    "pass it through a utils.validation check_* helper or "
                    "coerce_rng first",
                )


# ----------------------------------------------------------------------
# RL-P004 — cross-module dB/linear unit inference
# ----------------------------------------------------------------------
def _suffix_unit(name: str) -> str | None:
    if _DB_NAME.search(name):
        return "db"
    if _WATT_NAME.search(name):
        return "watt"
    return None


_CONFLICT = "conflict"


class _UnitInference:
    """Propagates dB/linear facts through assignments and call returns."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self.ret_units: dict[str, str] = {}
        self._seed_return_units()
        for _ in range(3):  # inter-procedural fixpoint (depth-3 call chains)
            if not self._propagate_return_units():
                break

    # -- return units ---------------------------------------------------
    def _function_items(self):
        for record in self.project:
            if record.is_test_code:
                continue
            for qual, fn in record.functions.items():
                yield record, f"{record.name}.{qual}", fn

    def _seed_return_units(self) -> None:
        for _record, key, fn in self._function_items():
            unit = _suffix_unit(fn.name)
            if unit is not None:
                self.ret_units[key] = unit

    def _propagate_return_units(self) -> bool:
        changed = False
        for record, key, fn in self._function_items():
            if _suffix_unit(fn.name) is not None:
                continue  # the name suffix is authoritative
            env = self.scope_env(record, fn)
            units = set()
            for node in _scope_nodes(record, fn):
                if isinstance(node, ast.Return) and node.value is not None:
                    units.add(self.unit_of(node.value, env, record))
            units.discard(None)
            if len(units) == 1:
                unit = units.pop()
                if unit in ("db", "watt") and self.ret_units.get(key) != unit:
                    self.ret_units[key] = unit
                    changed = True
        return changed

    # -- environments ---------------------------------------------------
    def scope_env(
        self,
        record: ModuleRecord,
        fn: ast.FunctionDef | ast.AsyncFunctionDef | None,
    ) -> dict[str, str]:
        env: dict[str, str] = {}
        if fn is not None:
            for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
                unit = _suffix_unit(arg.arg)
                if unit is not None:
                    env[arg.arg] = unit
        nodes = _scope_nodes(record, fn)
        for _ in range(2):  # unordered bindings need one extra sweep
            changed = False
            for node in nodes:
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                if node.value is None:
                    continue
                unit = self.unit_of(node.value, env, record)
                for name in _assigned_names(node):
                    if _suffix_unit(name) is not None:
                        continue  # suffixed names classify themselves
                    current = env.get(name)
                    if current == _CONFLICT:
                        continue
                    if unit in ("db", "watt"):
                        if current is None:
                            env[name] = unit
                            changed = True
                        elif current != unit:
                            env[name] = _CONFLICT
                            changed = True
            if not changed:
                break
        return {k: v for k, v in env.items() if v != _CONFLICT}

    # -- expression units -----------------------------------------------
    def unit_of(
        self, node: ast.AST, env: dict[str, str], record: ModuleRecord
    ) -> str | None:
        if isinstance(node, ast.Name):
            return env.get(node.id) or _suffix_unit(node.id)
        if isinstance(node, ast.Attribute):
            return _suffix_unit(node.attr)
        if isinstance(node, ast.Call):
            tail = _callee_tail(node, record)
            unit = _suffix_unit(tail)
            if unit is not None:
                return unit
            resolved = record.ctx.resolve_call_name(node.func)
            if resolved is not None:
                return self.ret_units.get(resolved)
            return None
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return None  # units do not survive *, /, ** unchanged
            left = self.unit_of(node.left, env, record)
            right = self.unit_of(node.right, env, record)
            if left and right and left != right:
                return None  # the mix is reported at this BinOp itself
            return left or right
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand, env, record)
        if isinstance(node, ast.IfExp):
            left = self.unit_of(node.body, env, record)
            right = self.unit_of(node.orelse, env, record)
            return left if left == right else None
        return None


@register_project
class CrossModuleUnitMix(ProjectRule):
    """RL-P004: dB/linear unit facts are propagated from identifier
    suffixes, converter-style call names, and project function returns
    through assignments and call boundaries; adding or subtracting a
    dB-classified value and a watt-classified value is then flagged even
    when neither operand carries a unit suffix itself.  Mixes already
    visible to the suffix-only RL-P002 heuristic are left to RL-P002."""

    rule_id = "RL-P004"
    title = "no inferred dB/linear unit mixing across assignments and calls"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        inference = _UnitInference(project)
        for record in project:
            if record.is_test_code:
                continue
            for fn, nodes in _scopes(record):
                env = inference.scope_env(record, fn)
                for node in nodes:
                    if not isinstance(node, ast.BinOp):
                        continue
                    if not isinstance(node.op, (ast.Add, ast.Sub)):
                        continue
                    left_s = _unit_classes(node.left)
                    right_s = _unit_classes(node.right)
                    if ("db" in left_s and "watt" in right_s) or (
                        "watt" in left_s and "db" in right_s
                    ):
                        continue  # RL-P002 already reports suffix-level mixes
                    left = inference.unit_of(node.left, env, record)
                    right = inference.unit_of(node.right, env, record)
                    if {left, right} == {"db", "watt"}:
                        yield (
                            record.path,
                            node,
                            f"arithmetic mixes dB-scaled and linear-power "
                            f"quantities (left inferred {left!r}, right "
                            f"inferred {right!r}) across assignments/call "
                            "boundaries; convert to one unit system "
                            "explicitly first",
                        )


# ----------------------------------------------------------------------
# RL-H006 — export surface integrity
# ----------------------------------------------------------------------
@register_project
class ExportSurfaceIntegrity(ProjectRule):
    """RL-H006: ``__all__`` is the module's contract.  A name listed there
    that does not exist breaks ``import *`` at runtime; a name exported
    but never referenced by any other project module is dead public API
    (or a missing consumer) and belongs off the contract.  The
    dead-export check only runs on multi-module projects."""

    rule_id = "RL-H006"
    title = "__all__ names exist and are consumed somewhere"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        references: dict[str, set[str]] | None = None
        if len(project) > 1:
            references = project.external_references()
        for record in project:
            if record.is_test_code or record.dunder_all is None:
                continue
            anchor = record.dunder_all_node
            for name in record.dunder_all:
                if name not in record.symbols:
                    yield (
                        record.path,
                        anchor,
                        f"`__all__` exports `{name}`, which is not defined at "
                        "module top level (import * would fail)",
                    )
            if references is None or record.name.endswith("__main__"):
                continue
            consumed = references.get(record.name, set())
            for name in record.dunder_all:
                if name.startswith("_") or name not in record.symbols:
                    continue
                if record.is_package and name in record.ctx.imported_names:
                    # A package __init__ re-export is a deliberate surface
                    # for consumers *outside* the linted tree (tests,
                    # benchmarks, downstream users); only names defined in
                    # the module itself are held to the consumption check.
                    continue
                if name not in consumed:
                    yield (
                        record.path,
                        anchor,
                        f"`{name}` is exported in `__all__` but never "
                        "referenced by another project module (dead public "
                        "API, or a consumer that bypasses the export surface)",
                    )


# ----------------------------------------------------------------------
# RL-H007 — no import cycles
# ----------------------------------------------------------------------
@register_project
class NoImportCycles(ProjectRule):
    """RL-H007: a top-level import cycle makes module initialisation
    order-dependent — whichever module imports first sees a partially
    initialised partner.  Break cycles with a lazy (function-level)
    import, a ``TYPE_CHECKING`` guard, or a shared lower-level module;
    both of those escapes are excluded from the graph on purpose."""

    rule_id = "RL-H007"
    title = "no top-level import cycles"

    def check_project(
        self, project: ProjectModel
    ) -> Iterator[tuple[str, ast.AST | int | None, str]]:
        edges = project.import_edges()
        for cycle in project.import_cycles():
            first = cycle[0]
            members = set(cycle)
            successor = next(
                (dst for dst in sorted(edges.get(first, ())) if dst in members),
                first,
            )
            lineno = edges.get(first, {}).get(successor, 1)
            chain = " -> ".join([*cycle, first]) if len(cycle) > 1 else (
                f"{first} -> {first}"
            )
            yield (
                project.modules[first].path,
                lineno,
                f"top-level import cycle: {chain}; break it with a lazy "
                "import, a TYPE_CHECKING guard, or a shared lower-level "
                "module",
            )
