"""Project-wide call graph and execution-context (thread) reachability.

Builds on the :class:`~repro.lint.project.ProjectModel`: every function
(including nested defs and methods, which the per-module ``functions``
index omits) becomes a node keyed ``"<module>:<qualname>"``, call edges
are resolved through the same import-alias machinery the per-file rules
use (plus ``self.method()`` dispatch and local ``f = target`` aliases),
and *entry points* are discovered from the concurrency APIs the codebase
actually uses:

* ``threading.Thread(target=...)`` / ``threading.Timer(..., fn)``
* ``signal.signal(signum, handler)``
* ``multiprocessing.Process(target=...)``
* ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` ``.submit``/``.map``
* subclasses of ``http.server.BaseHTTPRequestHandler`` (served threaded
  by ``ThreadingHTTPServer``): every method is a thread entry

Execution-context labels then propagate along call edges to a fixpoint:
``"main"`` (the importing/main thread; seeded at module top level and at
functions with no in-project callers that are not entry targets),
``"thread:<entry>"``, ``"signal:<entry>"``, and ``"process:<entry>"``
(the child process's main thread).  Two labels :func:`conflict` when the
functions carrying them can run concurrently in the *same address
space*: any thread label against a different label other than a signal
label (signal handlers interleave on the main thread — they matter for
re-entrancy, RL-C003, not for data races).

The graph is deliberately conservative about dynamic dispatch: an
unresolvable callee is simply no edge.  Rules built on top therefore
demand positive *sharing evidence* (a bound-method thread target, an
instance stored on shared state) before reporting, so per-invocation
instances — a connection opened inside the thread's own entry function —
never conflict with their creators.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.project import ModuleRecord, ProjectModel

__all__ = [
    "CallGraph",
    "ClassInfo",
    "EntryPoint",
    "FunctionInfo",
    "conflict",
    "conflicting_pair",
]

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

_THREAD_CTORS = {"threading.Thread", "threading.Timer"}
_PROCESS_CTORS = {
    "multiprocessing.Process",
    "multiprocessing.context.Process",
    "multiprocessing.process.Process",
}
_THREAD_POOL_CTORS = {
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
}
_PROCESS_POOL_CTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
}
_HANDLER_BASES = {
    "http.server.BaseHTTPRequestHandler",
    "http.server.SimpleHTTPRequestHandler",
    "socketserver.BaseRequestHandler",
    "socketserver.StreamRequestHandler",
}


def _walk_scope(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes of one lexical scope, not descending into nested defs."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES):
            # A def handed in at the top level (e.g. a module body) is a
            # nested scope too: its statements run on the caller's
            # context, not at definition time.
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_NODES):
                continue
            stack.append(child)


@dataclass
class FunctionInfo:
    """One call-graph node: a function, method, or nested def."""

    key: str  # "<module>:<qualname>"
    qualname: str
    record: ModuleRecord
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Qualname of the innermost enclosing class when this is a method.
    class_qual: str | None = None
    _scope: list[ast.AST] | None = field(default=None, repr=False)

    @property
    def scope_nodes(self) -> list[ast.AST]:
        """Memoised nodes of this function's own lexical scope."""
        if self._scope is None:
            self._scope = list(_walk_scope(self.node.body))
        return self._scope

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """A project class: methods plus statically-resolved base names."""

    key: str  # "<module>:<qualname>"
    qualname: str
    record: ModuleRecord
    node: ast.ClassDef
    #: Method name -> function key.
    methods: dict[str, str] = field(default_factory=dict)
    #: Dotted names of bases, resolved through import aliases.
    bases: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class EntryPoint:
    """A concurrency entry: some API will invoke ``key`` on ``kind``."""

    key: str  # target function key
    kind: str  # "thread" | "signal" | "process"
    path: str  # module registering the entry
    lineno: int
    #: The target was a bound ``self.method`` reference, so the instance
    #: itself escapes onto the new execution context.
    via_self: bool = False

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.key}"


def conflict(a: str, b: str) -> bool:
    """Whether two context labels can race in one address space."""
    if a == b:
        return False
    if a.startswith("signal:") or b.startswith("signal:"):
        return False
    return a.startswith("thread:") or b.startswith("thread:")


def conflicting_pair(labels: frozenset[str] | set[str]) -> tuple[str, str] | None:
    """A deterministic conflicting pair from a label set, if any."""
    ordered = sorted(labels)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if conflict(a, b):
                return (a, b)
    return None


class CallGraph:
    """Functions, call edges, entry points, and context labels."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, set[str]] = {}
        self.callers: dict[str, set[str]] = {}
        self.entries: list[EntryPoint] = []
        self.contexts: dict[str, frozenset[str]] = {}
        #: id(function node) -> key, for rules holding an AST node.
        self._by_node: dict[int, str] = {}
        self._handler_memo: dict[str, bool] = {}
        for record in project:
            self._index_record(record)
        for record in project:
            self._build_module(record)
        self._seed_and_propagate()

    # ------------------------------------------------------------------
    # Construction: memoised on the project model
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, project: ProjectModel) -> "CallGraph":
        """The project's call graph, built once per lint run."""
        cached = getattr(project, "_callgraph", None)
        if cached is None:
            cached = cls(project)
            project._callgraph = cached
        return cached

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def module_key(self, record: ModuleRecord) -> str:
        """Pseudo-function key for a module's top-level code."""
        return f"{record.name}:<module>"

    def function_key(self, node: ast.AST) -> str | None:
        """Graph key of a function definition node, if indexed."""
        return self._by_node.get(id(node))

    def _index_record(self, record: ModuleRecord) -> None:
        self._collect_defs(record, record.tree.body, "", None)

    def _collect_defs(
        self,
        record: ModuleRecord,
        body: list[ast.stmt],
        prefix: str,
        class_qual: str | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                key = f"{record.name}:{qual}"
                info = FunctionInfo(
                    key=key,
                    qualname=qual,
                    record=record,
                    node=stmt,
                    class_qual=class_qual,
                )
                self.functions.setdefault(key, info)
                self._by_node[id(stmt)] = key
                if class_qual is not None:
                    cls_key = f"{record.name}:{class_qual}"
                    self.classes[cls_key].methods.setdefault(stmt.name, key)
                self._collect_defs(record, stmt.body, f"{qual}.", None)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}{stmt.name}"
                key = f"{record.name}:{qual}"
                bases = []
                for base in stmt.bases:
                    dotted = record.ctx.resolve_call_name(base)
                    if dotted:
                        bases.append(dotted)
                self.classes.setdefault(
                    key,
                    ClassInfo(
                        key=key,
                        qualname=qual,
                        record=record,
                        node=stmt,
                        bases=bases,
                    ),
                )
                self._collect_defs(record, stmt.body, f"{qual}.", qual)
            else:
                for suite in ast.iter_child_nodes(stmt):
                    # Defs nested in if/try/with at the same level keep
                    # the enclosing prefix (conditional definitions).
                    if isinstance(suite, ast.stmt):
                        self._collect_defs(
                            record, [suite], prefix, class_qual
                        )

    # ------------------------------------------------------------------
    # Reference resolution
    # ------------------------------------------------------------------
    def _project_function(self, dotted: str | None) -> FunctionInfo | None:
        """Resolve an absolute dotted name to a project function."""
        if not dotted:
            return None
        owner = self.project.module_of(dotted)
        if owner is None or dotted == owner.name:
            return None
        symbol = dotted[len(owner.name) + 1 :]
        return self.functions.get(f"{owner.name}:{symbol}")

    def _project_class(self, dotted: str | None) -> ClassInfo | None:
        if not dotted:
            return None
        owner = self.project.module_of(dotted)
        if owner is None or dotted == owner.name:
            return None
        symbol = dotted[len(owner.name) + 1 :]
        return self.classes.get(f"{owner.name}:{symbol}")

    def resolve_callable(
        self,
        expr: ast.AST,
        record: ModuleRecord,
        class_qual: str | None,
        aliases: dict[str, str] | None = None,
        prefix: str | None = None,
    ) -> FunctionInfo | None:
        """Resolve a callable reference expression to a project function.

        Handles bound ``self.method`` / ``cls.method`` references (within
        ``class_qual``, following project base classes), local ``f =
        target`` aliases, nested defs of the enclosing function
        (``prefix`` is the caller's qualname), same-module top-level
        names, and import-qualified dotted names.
        """
        if isinstance(expr, ast.Name):
            if aliases and expr.id in aliases:
                return self.functions.get(aliases[expr.id])
            if prefix is not None:
                nested = self.functions.get(
                    f"{record.name}:{prefix}.{expr.id}"
                )
                if nested is not None:
                    return nested
            local = self.functions.get(f"{record.name}:{expr.id}")
            if local is not None:
                return local
            local_cls = self.classes.get(f"{record.name}:{expr.id}")
            if local_cls is not None:
                ctor = local_cls.methods.get("__init__")
                return self.functions.get(ctor) if ctor else None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id in ("self", "cls") and class_qual is not None:
                return self._resolve_method(record, class_qual, expr.attr)
        dotted = record.ctx.resolve_call_name(expr)
        info = self._project_function(dotted)
        if info is not None:
            return info
        cls = self._project_class(dotted)
        if cls is not None:
            ctor = cls.methods.get("__init__")
            return self.functions.get(ctor) if ctor else None
        return None

    def resolve_class(
        self, expr: ast.AST, record: ModuleRecord
    ) -> ClassInfo | None:
        """Resolve a class-reference expression to a project class."""
        if isinstance(expr, ast.Name):
            local = self.classes.get(f"{record.name}:{expr.id}")
            if local is not None:
                return local
        return self._project_class(record.ctx.resolve_call_name(expr))

    def _resolve_method(
        self, record: ModuleRecord, class_qual: str, name: str
    ) -> FunctionInfo | None:
        """Look a method up on a class, then on its project bases."""
        seen: set[str] = set()
        stack = [f"{record.name}:{class_qual}"]
        while stack:
            cls_key = stack.pop()
            if cls_key in seen:
                continue
            seen.add(cls_key)
            info = self.classes.get(cls_key)
            if info is None:
                continue
            fn_key = info.methods.get(name)
            if fn_key is not None:
                return self.functions.get(fn_key)
            for base in info.bases:
                base_cls = self._project_class(base)
                if base_cls is not None:
                    stack.append(base_cls.key)
        return None

    def is_handler_class(self, info: ClassInfo) -> bool:
        """Whether the class is a (threaded) socket/HTTP request handler."""
        memo = self._handler_memo
        if info.key in memo:
            return memo[info.key]
        memo[info.key] = False  # cycle guard
        result = False
        for base in info.bases:
            if base in _HANDLER_BASES:
                result = True
                break
            base_cls = self._project_class(base)
            if base_cls is not None and self.is_handler_class(base_cls):
                result = True
                break
        memo[info.key] = result
        return result

    # ------------------------------------------------------------------
    # Edge + entry construction
    # ------------------------------------------------------------------
    def _build_module(self, record: ModuleRecord) -> None:
        module_key = self.module_key(record)
        self.edges.setdefault(module_key, set())
        self._build_scope(
            module_key, record, list(_walk_scope(record.tree.body)), None, None
        )
        for key, info in list(self.functions.items()):
            if info.record is not record:
                continue
            self.edges.setdefault(key, set())
            self._build_scope(
                key, record, info.scope_nodes, info.class_qual, info.qualname
            )
        for cls_key, cls in self.classes.items():
            if cls.record is not record:
                continue
            if self.is_handler_class(cls):
                for method_key in cls.methods.values():
                    self.entries.append(
                        EntryPoint(
                            key=method_key,
                            kind="thread",
                            path=record.path,
                            lineno=cls.node.lineno,
                        )
                    )

    def _build_scope(
        self,
        caller: str,
        record: ModuleRecord,
        nodes: list[ast.AST],
        class_qual: str | None,
        prefix: str | None,
    ) -> None:
        aliases = self._local_aliases(record, nodes, class_qual, prefix)
        pools = self._pool_bindings(record, nodes)
        out = self.edges.setdefault(caller, set())

        def add_edge(info: FunctionInfo | None) -> None:
            if info is not None:
                out.add(info.key)
                self.callers.setdefault(info.key, set()).add(caller)

        def add_entry(target: ast.AST | None, kind: str, site: ast.AST) -> None:
            if target is None:
                return
            info = self.resolve_callable(
                target, record, class_qual, aliases, prefix
            )
            if info is None:
                return
            via_self = (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            )
            self.entries.append(
                EntryPoint(
                    key=info.key,
                    kind=kind,
                    path=record.path,
                    lineno=getattr(site, "lineno", 1),
                    via_self=via_self,
                )
            )

        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            resolved = record.ctx.resolve_call_name(node.func)
            if resolved in _THREAD_CTORS:
                target = _keyword(node, "target")
                if target is None and resolved == "threading.Timer":
                    target = node.args[1] if len(node.args) > 1 else None
                add_entry(target, "thread", node)
                continue
            if resolved in _PROCESS_CTORS:
                add_entry(_keyword(node, "target"), "process", node)
                continue
            if resolved == "signal.signal":
                handler = node.args[1] if len(node.args) > 1 else None
                add_entry(handler, "signal", node)
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
            ):
                fn = node.args[0] if node.args else None
                add_entry(fn, pools[node.func.value.id], node)
                continue
            add_edge(
                self.resolve_callable(
                    node.func, record, class_qual, aliases, prefix
                )
            )

    def _local_aliases(
        self,
        record: ModuleRecord,
        nodes: list[ast.AST],
        class_qual: str | None,
        prefix: str | None,
    ) -> dict[str, str]:
        """``f = <function reference>`` bindings within one scope."""
        aliases: dict[str, str] = {}
        for node in nodes:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Call):
                continue  # call results are values, not callables we track
            info = self.resolve_callable(
                node.value, record, class_qual, None, prefix
            )
            if info is not None:
                aliases[target.id] = info.key
        return aliases

    def _pool_bindings(
        self, record: ModuleRecord, nodes: list[ast.AST]
    ) -> dict[str, str]:
        """Names bound to executor pools -> submission context kind."""
        pools: dict[str, str] = {}

        def classify(value: ast.AST) -> str | None:
            if not isinstance(value, ast.Call):
                return None
            resolved = record.ctx.resolve_call_name(value.func)
            if resolved in _THREAD_POOL_CTORS:
                return "thread"
            if resolved in _PROCESS_POOL_CTORS:
                return "process"
            return None

        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = classify(node.value)
                if kind and isinstance(target, ast.Name):
                    pools[target.id] = kind
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    kind = classify(item.context_expr)
                    if kind and isinstance(item.optional_vars, ast.Name):
                        pools[item.optional_vars.id] = kind
        return pools

    # ------------------------------------------------------------------
    # Context propagation
    # ------------------------------------------------------------------
    def _seed_and_propagate(self) -> None:
        seeds: dict[str, set[str]] = {}
        for record in self.project:
            seeds[self.module_key(record)] = {"main"}
        entry_keys = {entry.key for entry in self.entries}
        for key in self.functions:
            if key not in entry_keys and not self.callers.get(key):
                # Un-called, non-entry functions are public API assumed
                # to run on the caller's (main) thread.
                seeds.setdefault(key, set()).add("main")
        for entry in self.entries:
            seeds.setdefault(entry.key, set()).add(entry.label)

        contexts: dict[str, set[str]] = {
            key: set(labels) for key, labels in seeds.items()
        }
        worklist = list(contexts)
        while worklist:
            caller = worklist.pop()
            labels = contexts.get(caller, set())
            if not labels:
                continue
            for callee in self.edges.get(caller, ()):
                have = contexts.setdefault(callee, set())
                if not labels <= have:
                    have |= labels
                    worklist.append(callee)
        self.contexts = {key: frozenset(value) for key, value in contexts.items()}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contexts_of(self, key: str) -> frozenset[str]:
        """Context labels under which ``key`` may execute."""
        return self.contexts.get(key, frozenset())

    def reachable_from(self, key: str) -> set[str]:
        """All function keys transitively callable from ``key``."""
        seen: set[str] = set()
        stack = [key]
        while stack:
            current = stack.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen


def _keyword(call: ast.Call, name: str) -> ast.AST | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None
