"""The finding record produced by every reprolint rule."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "sort_findings"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file, as given to the engine (posix-style
        separators so reports are stable across platforms).
    line, col:
        1-based line and 0-based column of the offending node.
    rule_id:
        The rule that fired, e.g. ``"RL-D001"``.
    message:
        Human-readable description of the violation.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as a compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Findings in stable report order: path, then line, col, rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
