"""Content-addressed per-file lint result cache.

Each per-file pass result is stored as one small JSON document keyed on
``sha256(path NUL sha256(source) NUL ruleset_signature)``: identical
content at the same path under the same rule set is a guaranteed hit, and
any change to the source, the rule ids, or :data:`~repro.lint.registry.RULESET_VERSION`
misses cleanly.  The path participates in the key because rule scoping is
path-sensitive (``em/`` vs ``analysis/`` classify differently), so the
same bytes can legitimately produce different findings at different
locations.

The cross-module passes (:mod:`repro.lint.flow`, the concurrency pack's
call-graph rules) depend on every module at once, so their results are
cached as one *project-level* entry keyed on the digests of **all**
``(path, source)`` pairs plus the ruleset signature — editing any one
file (or adding/removing one) changes the key and re-runs the whole
cross-module analysis, which is exactly the invalidation the call graph
needs: a new ``Thread(target=...)`` in module A can change findings
reported against module B.

The cache mirrors the campaign store's crash-tolerance posture: a
corrupt or truncated entry is treated as a miss and rewritten, never an
error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from repro.lint.findings import Finding

__all__ = ["DEFAULT_CACHE_DIR", "LintCache", "source_digest"]

#: Conventional in-repo cache location (gitignored); opt-in via the CLI.
DEFAULT_CACHE_DIR = ".reprolint-cache"

_FORMAT_VERSION = 1


def source_digest(source: str) -> str:
    """SHA-256 hex digest of a module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class LintCache:
    """Filesystem-backed cache of per-file lint results."""

    def __init__(self, root: str | Path, signature: str) -> None:
        self.root = Path(root)
        self.signature = signature
        self.hits = 0
        self.misses = 0

    def _entry_path(self, path: str, digest: str) -> Path:
        key = hashlib.sha256(
            f"{path}\0{digest}\0{self.signature}".encode("utf-8")
        ).hexdigest()
        return self.root / f"{key}.json"

    def get(self, path: str, source: str) -> list[Finding] | None:
        """Cached findings for ``(path, source)``; ``None`` on a miss."""
        entry = self._entry_path(path, source_digest(source))
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
        ):
            self.misses += 1
            return None
        try:
            findings = [
                Finding(
                    path=path,
                    line=int(line),
                    col=int(col),
                    rule_id=str(rule_id),
                    message=str(message),
                )
                for line, col, rule_id, message in payload["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, path: str, source: str, findings: Sequence[Finding]) -> None:
        """Store the per-file findings for ``(path, source)``."""
        entry = self._entry_path(path, source_digest(source))
        payload = {
            "version": _FORMAT_VERSION,
            "findings": [
                [f.line, f.col, f.rule_id, f.message] for f in findings
            ],
        }
        self._write(entry, payload)

    # ------------------------------------------------------------------
    # Project-level (cross-module) results
    # ------------------------------------------------------------------
    def _project_entry_path(self, items: Sequence[tuple[str, str]]) -> Path:
        """Cache entry for a whole-project pass over ``(path, source)``.

        The key hashes *every* module's path and content digest, so any
        cross-file edit — the inputs of the import graph and call graph —
        produces a different key and a clean miss.
        """
        hasher = hashlib.sha256(b"project\0")
        for path, source in sorted(items):
            hasher.update(path.encode("utf-8"))
            hasher.update(b"\0")
            hasher.update(source_digest(source).encode("utf-8"))
            hasher.update(b"\0")
        hasher.update(self.signature.encode("utf-8"))
        return self.root / f"{hasher.hexdigest()}.json"

    def get_project(
        self, items: Sequence[tuple[str, str]]
    ) -> list[Finding] | None:
        """Cached cross-module findings for the project; ``None`` on miss."""
        entry = self._project_entry_path(items)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
        ):
            self.misses += 1
            return None
        try:
            findings = [
                Finding(
                    path=str(path),
                    line=int(line),
                    col=int(col),
                    rule_id=str(rule_id),
                    message=str(message),
                )
                for path, line, col, rule_id, message in payload["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put_project(
        self, items: Sequence[tuple[str, str]], findings: Sequence[Finding]
    ) -> None:
        """Store the cross-module findings for the project snapshot."""
        payload = {
            "version": _FORMAT_VERSION,
            "findings": [
                [f.path, f.line, f.col, f.rule_id, f.message]
                for f in findings
            ],
        }
        self._write(self._project_entry_path(items), payload)

    def _write(self, entry: Path, payload: dict) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # Atomic replace so a concurrent reader never sees a torn entry.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=entry.stem, suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, entry)
        except OSError:
            # A read-only or full filesystem degrades to uncached linting.
            pass
