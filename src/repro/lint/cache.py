"""Content-addressed per-file lint result cache.

Each per-file pass result is stored as one small JSON document keyed on
``sha256(path NUL sha256(source) NUL ruleset_signature)``: identical
content at the same path under the same rule set is a guaranteed hit, and
any change to the source, the rule ids, or :data:`~repro.lint.registry.RULESET_VERSION`
misses cleanly.  The path participates in the key because rule scoping is
path-sensitive (``em/`` vs ``analysis/`` classify differently), so the
same bytes can legitimately produce different findings at different
locations.

Only the per-file pass is cached: the cross-module passes in
:mod:`repro.lint.flow` depend on every module at once, so they re-run on
each invocation (they are a small fraction of a cold lint).

The cache mirrors the campaign store's crash-tolerance posture: a
corrupt or truncated entry is treated as a miss and rewritten, never an
error.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from repro.lint.findings import Finding

__all__ = ["DEFAULT_CACHE_DIR", "LintCache", "source_digest"]

#: Conventional in-repo cache location (gitignored); opt-in via the CLI.
DEFAULT_CACHE_DIR = ".reprolint-cache"

_FORMAT_VERSION = 1


def source_digest(source: str) -> str:
    """SHA-256 hex digest of a module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class LintCache:
    """Filesystem-backed cache of per-file lint results."""

    def __init__(self, root: str | Path, signature: str) -> None:
        self.root = Path(root)
        self.signature = signature
        self.hits = 0
        self.misses = 0

    def _entry_path(self, path: str, digest: str) -> Path:
        key = hashlib.sha256(
            f"{path}\0{digest}\0{self.signature}".encode("utf-8")
        ).hexdigest()
        return self.root / f"{key}.json"

    def get(self, path: str, source: str) -> list[Finding] | None:
        """Cached findings for ``(path, source)``; ``None`` on a miss."""
        entry = self._entry_path(path, source_digest(source))
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
        ):
            self.misses += 1
            return None
        try:
            findings = [
                Finding(
                    path=path,
                    line=int(line),
                    col=int(col),
                    rule_id=str(rule_id),
                    message=str(message),
                )
                for line, col, rule_id, message in payload["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, path: str, source: str, findings: Sequence[Finding]) -> None:
        """Store the per-file findings for ``(path, source)``."""
        entry = self._entry_path(path, source_digest(source))
        payload = {
            "version": _FORMAT_VERSION,
            "findings": [
                [f.line, f.col, f.rule_id, f.message] for f in findings
            ],
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # Atomic replace so a concurrent reader never sees a torn entry.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=entry.stem, suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, entry)
        except OSError:
            # A read-only or full filesystem degrades to uncached linting.
            pass
