"""Campaign service: distributed, resumable experiment execution.

The service turns the in-process campaign runner into a deployable
system with three moving parts sharing one data directory:

* :mod:`repro.service.queue` — a crash-safe SQLite job queue with
  append-only state transitions (``pending -> leased -> done | failed |
  quarantined``), lease TTLs, a bounded requeue budget, and a
  per-campaign usage ledger;
* :mod:`repro.service.worker` — leasing worker processes that execute
  trials through the standard :func:`~repro.campaign.executor.execute_trial`
  path, heartbeat to keep their leases, drain gracefully on SIGTERM and
  lose nothing to ``kill -9``;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a stdlib
  HTTP control plane (submit / status / NDJSON event stream / cancel /
  results / usage) and its client, including the
  ``run_campaign(..., backend="service")`` drop-in backend.

See ``docs/campaigns.md`` ("Running as a service") for deployment.
"""

from repro.service.cli import service_paths
from repro.service.client import (
    ServiceClient,
    ServiceError,
    run_campaign_via_service,
)
from repro.service.queue import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_REQUEUE_BUDGET,
    JobQueue,
    LeasedJob,
    SpecConflictError,
    UnknownCampaignError,
)
from repro.service.server import CampaignServiceServer, serve_forever
from repro.service.testing import sleep_spec, sleep_trial, spin_trial
from repro.service.worker import ServiceWorker, run_worker_fleet

__all__ = [
    "CampaignServiceServer",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_REQUEUE_BUDGET",
    "JobQueue",
    "LeasedJob",
    "ServiceClient",
    "ServiceError",
    "ServiceWorker",
    "SpecConflictError",
    "UnknownCampaignError",
    "run_campaign_via_service",
    "run_worker_fleet",
    "serve_forever",
    "service_paths",
    "sleep_spec",
    "sleep_trial",
    "spin_trial",
]
