"""Leasing worker processes for the campaign service.

A worker is a plain process in a loop: lease a batch of trial jobs with
a TTL, execute them through the same :func:`execute_trial` path the
in-process executors use, report completions, repeat.  A background
heartbeat thread renews the worker's leases at a third of the TTL, so a
*live* worker never loses jobs to the expiry sweep no matter how long a
trial runs — while a worker that dies (``kill -9`` included) simply
stops heartbeating and its jobs re-queue when the TTL lapses.

Robustness contract:

* **SIGTERM drains gracefully** — the worker finishes the jobs it has
  already leased (completing them beats letting the leases lapse and
  burning requeue budget), then exits without leasing more.
* **SIGKILL loses nothing** — leased-but-incomplete jobs return to
  ``pending`` via :meth:`JobQueue.requeue_expired`; a job the dead
  worker *did* finish was recorded atomically first, and any in-flight
  duplicate completion by the replacement worker is a no-op.
* **Trial crashes stay in the trial** — :func:`execute_trial` converts
  exceptions and timeouts into ``failed`` reports; only a crash of the
  worker process itself (OOM-kill, segfault in native code) falls back
  to the lease-expiry path.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.campaign.executor import execute_trial, TrialTask
from repro.campaign.store import CampaignStore
from repro.service.queue import (
    DEFAULT_LEASE_TTL_S,
    DEFAULT_REQUEUE_BUDGET,
    JobQueue,
    LeasedJob,
)

__all__ = ["ServiceWorker", "run_worker_fleet"]

_LOG = logging.getLogger("repro.service.worker")


def _default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class ServiceWorker:
    """One lease/execute/complete loop against a shared job queue.

    Parameters
    ----------
    db_path, store_root:
        The service data files: the SQLite queue and the shared
        :class:`CampaignStore` root (workers need filesystem access to
        both — they talk to the queue directly, not over HTTP).
    batch_size:
        Jobs leased per round trip.  Leased jobs execute sequentially
        in this process; run more worker processes for parallelism.
    lease_ttl_s:
        Lease validity without a heartbeat — the recovery latency after
        a worker is killed outright.
    max_idle_s:
        Exit after this long with nothing to lease (``None`` = run
        until stopped), letting batch deployments drain and terminate.
    """

    def __init__(
        self,
        db_path: str | Path,
        store_root: str | Path,
        *,
        worker_id: str | None = None,
        batch_size: int = 1,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        poll_interval_s: float = 0.2,
        heartbeat_interval_s: float | None = None,
        max_idle_s: float | None = None,
        requeue_budget: int = DEFAULT_REQUEUE_BUDGET,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.db_path = Path(db_path)
        self.store_root = Path(store_root)
        self.worker_id = worker_id or _default_worker_id()
        self.batch_size = batch_size
        self.lease_ttl_s = lease_ttl_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = (
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else lease_ttl_s / 3.0
        )
        self.max_idle_s = max_idle_s
        self.requeue_budget = requeue_budget
        self.clock = clock
        self._stop = threading.Event()
        self._drain_signal: int | None = None

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the loop to drain: finish leased jobs, lease no more."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _handler(signum: int, frame: Any) -> None:
            # Logging takes a lock and is not async-signal-safe; only
            # record the signal and set the stop event here.  The main
            # loop reports the drain once it observes it (RL-C003).
            self._drain_signal = signum
            self.request_stop()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, stop: threading.Event) -> None:
        # Own connection: JobQueue instances are single-threaded.
        queue = self._open_queue()
        try:
            while not stop.wait(self.heartbeat_interval_s):
                try:
                    held = queue.heartbeat(
                        self.worker_id, ttl_s=self.lease_ttl_s
                    )
                except Exception:
                    _LOG.exception(
                        "worker %s: heartbeat failed", self.worker_id
                    )
                    continue
                if held:
                    _LOG.debug(
                        "worker %s: renewed %d lease(s)",
                        self.worker_id,
                        len(held),
                    )
        finally:
            queue.close()

    def _open_queue(self) -> JobQueue:
        return JobQueue(
            self.db_path,
            CampaignStore(self.store_root),
            requeue_budget=self.requeue_budget,
            clock=self.clock,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _execute(self, queue: JobQueue, job: LeasedJob) -> str:
        task = TrialTask(
            trial_id=job.trial_id,
            key=job.key,
            trial_ref=job.trial_ref,
            params=job.params,
            timeout_s=job.timeout_s,
        )
        report = execute_trial(task)
        report["attempts"] = job.attempts
        return queue.complete(self.worker_id, job.campaign_id, job.key, report)

    def run(self) -> dict[str, int]:
        """Lease and execute until stopped or idle; returns counters."""
        queue = self._open_queue()
        hb_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(hb_stop,),
            name=f"heartbeat-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        counters = {"executed": 0, "done": 0, "failed": 0, "requeued": 0}
        idle_since: float | None = None
        _LOG.info(
            "worker %s: starting (batch=%d, ttl=%.1fs)",
            self.worker_id,
            self.batch_size,
            self.lease_ttl_s,
        )
        try:
            while not self._stop.is_set():
                jobs = queue.lease(
                    self.worker_id,
                    limit=self.batch_size,
                    ttl_s=self.lease_ttl_s,
                )
                if not jobs:
                    now = self.clock()
                    idle_since = idle_since if idle_since is not None else now
                    if (
                        self.max_idle_s is not None
                        and now - idle_since >= self.max_idle_s
                    ):
                        _LOG.info(
                            "worker %s: idle %.1fs, exiting",
                            self.worker_id,
                            now - idle_since,
                        )
                        break
                    time.sleep(self.poll_interval_s)
                    continue
                idle_since = None
                for job in jobs:
                    # Even mid-drain, finish what we leased: completing
                    # beats expiring (no requeue budget burned).
                    state = self._execute(queue, job)
                    counters["executed"] += 1
                    if state == "done":
                        counters["done"] += 1
                    elif state == "failed":
                        counters["failed"] += 1
                    elif state == "pending":
                        counters["requeued"] += 1
        finally:
            hb_stop.set()
            heartbeat.join(timeout=5.0)
            queue.close()
        if self._drain_signal is not None:
            _LOG.info(
                "worker %s: received signal %d, drained",
                self.worker_id,
                self._drain_signal,
            )
        _LOG.info("worker %s: stopped after %s", self.worker_id, counters)
        return counters


def _fleet_main(
    db_path: str,
    store_root: str,
    worker_kwargs: dict[str, Any],
) -> None:
    worker = ServiceWorker(db_path, store_root, **worker_kwargs)
    worker.install_signal_handlers()
    worker.run()


def run_worker_fleet(
    count: int,
    db_path: str | Path,
    store_root: str | Path,
    **worker_kwargs: Any,
) -> list[multiprocessing.Process]:
    """Start ``count`` worker processes against one queue; returns them.

    Each child installs the graceful-drain signal handlers, so
    ``terminate()`` (SIGTERM) drains and ``kill()`` (SIGKILL) exercises
    the lease-expiry recovery path.  The caller owns the processes:
    join them, or terminate and join on shutdown.
    """
    if count < 1:
        raise ValueError(f"worker count must be >= 1, got {count}")
    processes = []
    for index in range(count):
        kwargs = dict(worker_kwargs)
        kwargs.setdefault("worker_id", f"{_default_worker_id()}#{index}")
        process = multiprocessing.Process(
            target=_fleet_main,
            args=(str(db_path), str(store_root), kwargs),
            name=f"repro-service-worker-{index}",
        )
        process.start()
        processes.append(process)
    return processes
