"""``python -m repro service`` — deploy and drive the campaign service.

Subcommands:

* ``serve``  — run the HTTP control plane over a service data directory;
* ``worker`` — run a fleet of leasing worker processes against the same
  data directory (workers talk to the queue directly, not over HTTP);
* ``submit`` — submit a campaign spec to a running server, optionally
  waiting for completion with progress lines;
* ``status`` / ``cancel`` / ``usage`` — poke a running server.

A deployment is one data directory shared by the server and every
worker: ``<data-dir>/queue.sqlite3`` (the job queue) and
``<data-dir>/store/`` (the shared :class:`CampaignStore`).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

__all__ = ["configure_parser", "run_service_command", "service_paths"]

#: Default service data directory, relative to the working directory.
DEFAULT_DATA_DIR = Path(".repro_service")


def service_paths(data_dir: str | Path) -> tuple[Path, Path]:
    """The (queue database, campaign store root) pair for a data dir."""
    root = Path(data_dir)
    return root / "queue.sqlite3", root / "store"


def _add_data_dir(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--data-dir",
        type=Path,
        default=DEFAULT_DATA_DIR,
        help=f"service data directory (default: {DEFAULT_DATA_DIR})",
    )


def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8642",
        help="base URL of a running service (default: %(default)s)",
    )


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the service subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="service_command", required=True)

    serve_p = sub.add_parser("serve", help="run the HTTP control plane")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642)
    _add_data_dir(serve_p)
    serve_p.set_defaults(service_func=_cmd_serve)

    worker_p = sub.add_parser(
        "worker", help="run leasing worker processes against the queue"
    )
    _add_data_dir(worker_p)
    worker_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: REPRO_JOBS or CPU count)",
    )
    worker_p.add_argument(
        "--batch", type=int, default=1, help="jobs leased per round trip"
    )
    worker_p.add_argument(
        "--ttl", type=float, default=30.0, metavar="S",
        help="lease TTL in seconds (default 30)",
    )
    worker_p.add_argument(
        "--poll", type=float, default=0.2, metavar="S",
        help="idle poll interval in seconds (default 0.2)",
    )
    worker_p.add_argument(
        "--max-idle", type=float, default=None, metavar="S",
        help="exit after S seconds with nothing to lease (default: run forever)",
    )
    worker_p.set_defaults(service_func=_cmd_worker)

    submit_p = sub.add_parser(
        "submit", help="submit a campaign spec to a running server"
    )
    submit_p.add_argument(
        "name",
        help="built-in campaign name or 'module:callable' spec reference",
    )
    _add_url(submit_p)
    submit_p.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-trial wall-time limit in seconds",
    )
    submit_p.add_argument(
        "--wait", action="store_true",
        help="stream progress until the campaign finishes",
    )
    submit_p.set_defaults(service_func=_cmd_submit)

    status_p = sub.add_parser("status", help="campaign status from a server")
    status_p.add_argument("name", help="campaign name")
    _add_url(status_p)
    status_p.set_defaults(service_func=_cmd_status)

    cancel_p = sub.add_parser("cancel", help="cancel a campaign on a server")
    cancel_p.add_argument("name", help="campaign name")
    _add_url(cancel_p)
    cancel_p.set_defaults(service_func=_cmd_cancel)

    usage_p = sub.add_parser(
        "usage", help="per-campaign compute-accounting ledger"
    )
    usage_p.add_argument("name", help="campaign name")
    _add_url(usage_p)
    usage_p.set_defaults(service_func=_cmd_usage)


def run_service_command(args: argparse.Namespace) -> int:
    """Dispatch to the selected service subcommand."""
    return int(args.service_func(args))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve_forever

    db_path, store_root = service_paths(args.data_dir)
    print(
        f"campaign service on http://{args.host}:{args.port} "
        f"(data: {args.data_dir})",
        flush=True,
    )
    try:
        serve_forever(args.host, args.port, db_path, store_root)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.campaign.executor import resolve_worker_count
    from repro.service.worker import ServiceWorker, run_worker_fleet

    db_path, store_root = service_paths(args.data_dir)
    count = resolve_worker_count(args.jobs)
    kwargs = {
        "batch_size": args.batch,
        "lease_ttl_s": args.ttl,
        "poll_interval_s": args.poll,
        "max_idle_s": args.max_idle,
    }
    print(f"starting {count} worker(s) against {db_path}", flush=True)
    if count == 1:
        worker = ServiceWorker(db_path, store_root, **kwargs)
        worker.install_signal_handlers()
        worker.run()
        return 0
    fleet = run_worker_fleet(count, db_path, store_root, **kwargs)
    exit_code = 0
    try:
        for process in fleet:
            process.join()
            exit_code = exit_code or (process.exitcode or 0)
    except KeyboardInterrupt:
        for process in fleet:
            process.terminate()
        for process in fleet:
            process.join()
    return exit_code


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.campaign.experiments import resolve_spec
    from repro.campaign.telemetry import ProgressReporter
    from repro.service.client import ServiceClient

    spec = resolve_spec(args.name)
    client = ServiceClient(args.url)
    status = client.submit(spec, timeout_s=args.timeout)
    print(json.dumps(status, indent=2, sort_keys=True))
    if not args.wait:
        return 0
    reporter = ProgressReporter(spec.trial_count)
    final = client.wait(spec.name, progress=reporter)
    counts = final["job_counts"]
    print(f"campaign {spec.name}: {json.dumps(counts, sort_keys=True)}")
    return 0 if counts["failed"] == 0 and counts["quarantined"] == 0 else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    print(
        json.dumps(
            ServiceClient(args.url).status(args.name), indent=2, sort_keys=True
        )
    )
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    status = ServiceClient(args.url).cancel(args.name)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    print(
        json.dumps(
            ServiceClient(args.url).usage(args.name), indent=2, sort_keys=True
        )
    )
    return 0
