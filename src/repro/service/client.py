"""HTTP client for the campaign service, and the drop-in runner backend.

:class:`ServiceClient` wraps the control-plane API with plain
``urllib`` — no third-party dependencies — and
:func:`run_campaign_via_service` turns a submitted campaign back into
the same :class:`~repro.campaign.runner.CampaignResult` the in-process
runner returns, so ``run_campaign(spec, backend="service",
service_url=...)`` is a drop-in replacement: existing benchmarks and
analysis code work unchanged against a multi-worker deployment.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Iterator, Mapping
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.campaign.runner import CampaignResult, TrialRecord
from repro.campaign.spec import CampaignSpec
from repro.campaign.telemetry import CampaignTelemetry

__all__ = ["ServiceClient", "ServiceError", "run_campaign_via_service"]

Progress = Callable[[Mapping[str, Any]], None]

#: transition ``to_state`` -> record outcome, for progress callbacks.
_TERMINAL_OUTCOMES = {
    "done": "completed",
    "failed": "failed",
    "quarantined": "failed",
}


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the campaign service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"service returned {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal blocking client for one campaign-service base URL."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Any = None) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as exc:
            raise ServiceError(exc.code, _error_text(exc)) from exc

    def _get(self, path: str) -> Any:
        return self._request("GET", path)

    def _post(self, path: str, payload: Any = None) -> Any:
        return self._request("POST", path, payload)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return self._get("/healthz")

    def submit(
        self, spec: CampaignSpec, *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        """Submit a campaign spec; idempotent for an identical spec."""
        payload: dict[str, Any] = {"spec": spec.to_dict()}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._post("/v1/campaigns", payload)

    def list_campaigns(self) -> list[dict[str, Any]]:
        """Status of every campaign the service knows."""
        return self._get("/v1/campaigns")["campaigns"]

    def status(self, name: str) -> dict[str, Any]:
        """Queue status + shared store-status summary + usage ledger."""
        return self._get(f"/v1/campaigns/{name}")

    def results(self, name: str) -> list[dict[str, Any]]:
        """Final per-trial records of terminal jobs."""
        return self._get(f"/v1/campaigns/{name}/results")["records"]

    def usage(self, name: str) -> dict[str, Any]:
        """The campaign's compute-accounting ledger."""
        return self._get(f"/v1/campaigns/{name}/usage")

    def cancel(self, name: str) -> dict[str, Any]:
        """Stop leasing the campaign's remaining jobs."""
        return self._post(f"/v1/campaigns/{name}/cancel")

    def iter_events(
        self, name: str, *, since: int = 0, follow: bool = True
    ) -> Iterator[dict[str, Any]]:
        """Stream the campaign's NDJSON transition log.

        With ``follow`` the server holds the connection open until the
        campaign finishes; without it, the current backlog is returned
        and the stream ends.
        """
        follow_flag = "1" if follow else "0"
        path = f"/v1/campaigns/{name}/events?since={since}&follow={follow_flag}"
        request = Request(self.base_url + path)
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line:
                        yield json.loads(line)
        except HTTPError as exc:
            raise ServiceError(exc.code, _error_text(exc)) from exc

    def wait(
        self,
        name: str,
        *,
        progress: Progress | None = None,
        deadline_s: float | None = None,
        poll_s: float = 0.5,
    ) -> dict[str, Any]:
        """Block until the campaign finishes; returns its final status.

        Progress is driven from the event stream (one callback per
        terminal transition); a dropped stream falls back to polling
        and resumes streaming from the last seen sequence number.
        """
        start = time.monotonic()
        last_seq = 0
        while True:
            try:
                for event in self.iter_events(name, since=last_seq):
                    last_seq = max(last_seq, int(event.get("seq", last_seq)))
                    if progress is not None:
                        _fire_progress(progress, event)
            except (URLError, TimeoutError, ConnectionError, json.JSONDecodeError):
                time.sleep(poll_s)  # stream dropped; poll and retry
            status = self.status(name)
            if status["finished"]:
                return status
            if (
                deadline_s is not None
                and time.monotonic() - start > deadline_s
            ):
                raise TimeoutError(
                    f"campaign {name!r} not finished after {deadline_s:.0f}s: "
                    f"{status['job_counts']}"
                )
            time.sleep(poll_s)


def _error_text(exc: HTTPError) -> str:
    try:
        payload = json.loads(exc.read().decode("utf-8"))
        return str(payload.get("error", payload))
    except (ValueError, OSError):
        return str(exc.reason)


def _fire_progress(progress: Progress, event: Mapping[str, Any]) -> None:
    """Invoke a runner-style progress callback for a terminal transition."""
    outcome = _TERMINAL_OUTCOMES.get(str(event.get("to_state")))
    if outcome is None:
        return
    progress(
        {
            "trial_id": event.get("trial_id"),
            "outcome": outcome,
            "cached": event.get("detail") == "cache hit",
            "attempts": 1,
            "wall_time_s": 0.0,
            "error": event.get("detail") if outcome == "failed" else None,
        }
    )


def _record_from_service(
    trial: Any, record: Mapping[str, Any] | None
) -> TrialRecord:
    if record is None:
        return TrialRecord(
            trial_id=trial.trial_id,
            key=trial.key,
            params=trial.params,
            outcome="failed",
            metrics=None,
            error="trial not executed (campaign cancelled or unfinished)",
            attempts=0,
            wall_time_s=0.0,
            cached=False,
        )
    return TrialRecord(
        trial_id=trial.trial_id,
        key=trial.key,
        params=trial.params,
        outcome=str(record.get("outcome", "failed")),
        metrics=record.get("metrics"),
        error=record.get("error"),
        attempts=int(record.get("attempts") or 0),
        wall_time_s=float(record.get("wall_time_s", 0.0)),
        cached=bool(record.get("cached", False)),
    )


def run_campaign_via_service(
    spec: CampaignSpec,
    client: ServiceClient,
    *,
    timeout_s: float | None = None,
    progress: Progress | None = None,
    deadline_s: float | None = None,
) -> CampaignResult:
    """Submit, wait, and assemble a :class:`CampaignResult`.

    The returned result has records in spec order with the same record
    schema as the in-process runner; telemetry counters come from the
    service's usage ledger (``executed_wall_s`` is the fleet's summed
    trial wall time — CPU-seconds of compute, not elapsed time here).
    """
    client.submit(spec, timeout_s=timeout_s)
    client.wait(spec.name, progress=progress, deadline_s=deadline_s)
    by_key = {
        str(record.get("key")): record for record in client.results(spec.name)
    }
    records = [
        _record_from_service(trial, by_key.get(trial.key))
        for trial in spec.trials()
    ]
    usage = client.usage(spec.name)
    telemetry = CampaignTelemetry(
        completed=int(usage.get("trials_completed", 0)),
        failed=int(usage.get("trials_failed", 0)),
        cached=int(usage.get("cache_hits", 0)),
        retried=int(usage.get("requeues", 0)),
        executed_wall_s=float(usage.get("cpu_seconds", 0.0)),
    )
    return CampaignResult(spec, records, telemetry)
