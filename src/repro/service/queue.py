"""Crash-safe persistent job queue for distributed campaign execution.

One SQLite database holds every campaign submitted to the service,
decomposed into individually leasable trial jobs.  The state machine per
job is strict and append-only logged::

    pending -> leased -> done | failed | quarantined
                  \\-> pending        (lease expired / transient failure,
                                       within the requeue budget)

Every transition is recorded in an append-only ``transitions`` table
(monotonic ``seq``), which doubles as the progress stream served over
HTTP.  Completed trials are persisted through the existing
:class:`~repro.campaign.store.CampaignStore` — same content-addressed
keys, same JSONL log — so service campaigns and in-process campaigns
share one cache and one exactly-once guarantee: the first transition of
a job to ``done`` writes the record; any later completion of the same
key (a worker that lost its lease but finished anyway) is a no-op.

Durability posture: SQLite in WAL mode with ``synchronous=NORMAL``; a
``kill -9`` of a worker leaves its jobs ``leased`` until the TTL lapses,
after which :meth:`JobQueue.requeue_expired` (run by every lease call)
returns them to ``pending`` — or ``quarantined`` once the bounded
requeue budget is spent, so a poison trial cannot cycle forever.

:class:`JobQueue` instances wrap one SQLite connection and are *not*
thread-safe; open one per thread (they are cheap).
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_REQUEUE_BUDGET",
    "JobQueue",
    "LeasedJob",
    "SpecConflictError",
    "UnknownCampaignError",
]

#: Default seconds a lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL_S = 30.0

#: Default times a job may return to ``pending`` before quarantine.
DEFAULT_REQUEUE_BUDGET = 3

#: Schema version stamped into the database (PRAGMA user_version).
_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id   TEXT PRIMARY KEY,
    spec_json     TEXT NOT NULL,
    spec_digest   TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'active',
    timeout_s     REAL,
    submitted_at  REAL NOT NULL,
    total_trials  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    campaign_id      TEXT NOT NULL,
    key              TEXT NOT NULL,
    trial_id         TEXT NOT NULL,
    trial_ref        TEXT NOT NULL,
    params_json      TEXT NOT NULL,
    timeout_s        REAL,
    state            TEXT NOT NULL,
    worker_id        TEXT,
    lease_expires_at REAL,
    requeues         INTEGER NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    cached           INTEGER NOT NULL DEFAULT 0,
    result_json      TEXT,
    error            TEXT,
    updated_at       REAL NOT NULL,
    PRIMARY KEY (campaign_id, key)
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, campaign_id, trial_id);
CREATE TABLE IF NOT EXISTS transitions (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id  TEXT NOT NULL,
    key          TEXT NOT NULL,
    trial_id     TEXT NOT NULL,
    from_state   TEXT,
    to_state     TEXT NOT NULL,
    worker_id    TEXT,
    at           REAL NOT NULL,
    detail       TEXT
);
CREATE INDEX IF NOT EXISTS transitions_by_campaign
    ON transitions (campaign_id, seq);
CREATE TABLE IF NOT EXISTS usage (
    campaign_id      TEXT PRIMARY KEY,
    trials_executed  INTEGER NOT NULL DEFAULT 0,
    trials_completed INTEGER NOT NULL DEFAULT 0,
    trials_failed    INTEGER NOT NULL DEFAULT 0,
    cache_hits       INTEGER NOT NULL DEFAULT 0,
    requeues         INTEGER NOT NULL DEFAULT 0,
    quarantined      INTEGER NOT NULL DEFAULT 0,
    cpu_seconds      REAL NOT NULL DEFAULT 0.0
);
"""

#: Job states that will never change again.
_TERMINAL_STATES = ("done", "failed", "quarantined")


class UnknownCampaignError(KeyError):
    """Raised for operations on a campaign the queue has never seen."""


class SpecConflictError(ValueError):
    """Raised when a campaign name is resubmitted with a different spec."""


@dataclass(frozen=True)
class LeasedJob:
    """One trial a worker currently holds a lease on."""

    campaign_id: str
    key: str
    trial_id: str
    trial_ref: str
    params: Mapping[str, Any]
    timeout_s: float | None
    lease_expires_at: float
    attempts: int


class JobQueue:
    """SQLite-backed persistent trial-job queue (one connection, one thread)."""

    def __init__(
        self,
        db_path: str | Path,
        store: CampaignStore,
        *,
        requeue_budget: int = DEFAULT_REQUEUE_BUDGET,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if requeue_budget < 0:
            raise ValueError(
                f"requeue_budget must be >= 0, got {requeue_budget}"
            )
        self.db_path = Path(db_path)
        self.store = store
        self.requeue_budget = requeue_budget
        self.clock = clock
        self.db_path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.db_path, timeout=30.0)
        try:
            self._conn.row_factory = sqlite3.Row
            self._conn.isolation_level = None  # explicit BEGIN/COMMIT below
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            # executescript manages its own transaction; DDL is idempotent.
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
        except BaseException:
            # A corrupt or incompatible database must not leak the
            # just-opened connection (WAL files would stay pinned).
            self._conn.close()
            raise

    def close(self) -> None:
        """Release the underlying SQLite connection."""
        self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @contextmanager
    def _tx(self) -> Iterator[sqlite3.Connection]:
        """One write transaction; IMMEDIATE so lock conflicts fail early."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    def _log_transition(
        self,
        campaign_id: str,
        key: str,
        trial_id: str,
        from_state: str | None,
        to_state: str,
        worker_id: str | None = None,
        detail: str | None = None,
    ) -> None:
        self._conn.execute(
            "INSERT INTO transitions "
            "(campaign_id, key, trial_id, from_state, to_state, worker_id,"
            " at, detail) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                campaign_id, key, trial_id, from_state, to_state,
                worker_id, self.clock(), detail,
            ),
        )

    def _bump_usage(self, campaign_id: str, **deltas: float) -> None:
        sets = ", ".join(f"{column} = {column} + ?" for column in deltas)
        self._conn.execute(
            f"UPDATE usage SET {sets} WHERE campaign_id = ?",
            (*deltas.values(), campaign_id),
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, spec: CampaignSpec, *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        """Enqueue a campaign's trials; idempotent for an identical spec.

        Trials already completed in the shared :class:`CampaignStore`
        are enqueued directly as ``done`` (counted as cache hits in the
        usage ledger), so a resubmitted or restarted campaign only
        executes its delta — the same semantics as the in-process
        runner.  Resubmitting the same name with a *different* spec is
        rejected: names identify campaigns for status/cancel routing.
        """
        digest = spec.key_for({"__spec__": [dict(p) for p in spec.grid]})
        now = self.clock()
        with self._tx():
            row = self._conn.execute(
                "SELECT spec_digest FROM campaigns WHERE campaign_id = ?",
                (spec.name,),
            ).fetchone()
            if row is not None:
                if row["spec_digest"] != digest:
                    raise SpecConflictError(
                        f"campaign {spec.name!r} already exists with a "
                        "different spec; clean it or bump the name/version"
                    )
                return self.campaign_status(spec.name)
            self._conn.execute(
                "INSERT INTO campaigns (campaign_id, spec_json, spec_digest,"
                " state, timeout_s, submitted_at, total_trials)"
                " VALUES (?, ?, ?, 'active', ?, ?, ?)",
                (
                    spec.name,
                    json.dumps(spec.to_dict(), sort_keys=True),
                    digest,
                    timeout_s,
                    now,
                    spec.trial_count,
                ),
            )
            self._conn.execute(
                "INSERT INTO usage (campaign_id) VALUES (?)", (spec.name,)
            )
            cache_hits = 0
            for trial in spec.trials():
                cached = self.store.load(spec.name, trial.key)
                state = "pending" if cached is None else "done"
                result_json = None
                if cached is not None:
                    cache_hits += 1
                    result_json = json.dumps(cached, sort_keys=True)
                self._conn.execute(
                    "INSERT INTO jobs (campaign_id, key, trial_id, trial_ref,"
                    " params_json, timeout_s, state, cached, result_json,"
                    " attempts, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        spec.name,
                        trial.key,
                        trial.trial_id,
                        spec.trial,
                        json.dumps(dict(trial.params), sort_keys=True),
                        timeout_s,
                        state,
                        int(cached is not None),
                        result_json,
                        int(cached is not None and int(cached.get("attempts", 1))),
                        now,
                    ),
                )
                self._log_transition(
                    spec.name, trial.key, trial.trial_id, None, state,
                    detail="cache hit" if cached is not None else "submitted",
                )
            if cache_hits:
                self._bump_usage(spec.name, cache_hits=cache_hits)
        return self.campaign_status(spec.name)

    # ------------------------------------------------------------------
    # Leasing and heartbeats
    # ------------------------------------------------------------------
    def lease(
        self,
        worker_id: str,
        *,
        limit: int = 1,
        ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> list[LeasedJob]:
        """Atomically claim up to ``limit`` pending jobs for ``ttl_s``.

        Expired leases are swept first, so a queue whose workers died
        heals on the next lease attempt by any surviving worker.
        """
        if limit < 1:
            raise ValueError(f"lease limit must be >= 1, got {limit}")
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl_s}")
        self.requeue_expired()
        now = self.clock()
        leased: list[LeasedJob] = []
        with self._tx():
            rows = self._conn.execute(
                "SELECT j.* FROM jobs j"
                " JOIN campaigns c ON c.campaign_id = j.campaign_id"
                " WHERE j.state = 'pending' AND c.state = 'active'"
                " ORDER BY j.campaign_id, j.trial_id LIMIT ?",
                (limit,),
            ).fetchall()
            for row in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'leased', worker_id = ?,"
                    " lease_expires_at = ?, attempts = attempts + 1,"
                    " updated_at = ?"
                    " WHERE campaign_id = ? AND key = ?",
                    (worker_id, now + ttl_s, now, row["campaign_id"], row["key"]),
                )
                self._log_transition(
                    row["campaign_id"], row["key"], row["trial_id"],
                    "pending", "leased", worker_id,
                )
                leased.append(
                    LeasedJob(
                        campaign_id=row["campaign_id"],
                        key=row["key"],
                        trial_id=row["trial_id"],
                        trial_ref=row["trial_ref"],
                        params=json.loads(row["params_json"]),
                        timeout_s=row["timeout_s"],
                        lease_expires_at=now + ttl_s,
                        attempts=row["attempts"] + 1,
                    )
                )
        return leased

    def heartbeat(
        self, worker_id: str, *, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> list[tuple[str, str]]:
        """Renew every lease ``worker_id`` still holds; returns them.

        A job absent from the returned list was lost — its lease
        expired and another worker may already own it.  The worker
        should keep running its current trial anyway: completion is
        first-write-wins, so the race costs at most one duplicate
        execution, never a duplicate record.
        """
        now = self.clock()
        with self._tx():
            rows = self._conn.execute(
                "SELECT campaign_id, key FROM jobs"
                " WHERE state = 'leased' AND worker_id = ?"
                "   AND lease_expires_at >= ?",
                (worker_id, now),
            ).fetchall()
            held = [(row["campaign_id"], row["key"]) for row in rows]
            self._conn.execute(
                "UPDATE jobs SET lease_expires_at = ?, updated_at = ?"
                " WHERE state = 'leased' AND worker_id = ?"
                "   AND lease_expires_at >= ?",
                (now + ttl_s, now, worker_id, now),
            )
        return held

    def requeue_expired(self) -> int:
        """Return expired leases to ``pending`` (or quarantine them).

        Jobs whose requeue budget is spent go to ``quarantined``
        instead, so a trial that reliably kills its worker cannot cycle
        through the fleet forever.  Returns the number of jobs moved.
        """
        now = self.clock()
        moved = 0
        with self._tx():
            rows = self._conn.execute(
                "SELECT campaign_id, key, trial_id, worker_id, requeues"
                " FROM jobs WHERE state = 'leased' AND lease_expires_at < ?",
                (now,),
            ).fetchall()
            for row in rows:
                exhausted = row["requeues"] >= self.requeue_budget
                new_state = "quarantined" if exhausted else "pending"
                detail = (
                    f"lease expired; requeue budget ({self.requeue_budget}) spent"
                    if exhausted
                    else f"lease expired (requeue {row['requeues'] + 1})"
                )
                self._conn.execute(
                    "UPDATE jobs SET state = ?, worker_id = NULL,"
                    " lease_expires_at = NULL, requeues = requeues + 1,"
                    " error = CASE WHEN ? = 'quarantined' THEN ? ELSE error END,"
                    " updated_at = ?"
                    " WHERE campaign_id = ? AND key = ? AND state = 'leased'",
                    (
                        new_state, new_state, detail, now,
                        row["campaign_id"], row["key"],
                    ),
                )
                self._log_transition(
                    row["campaign_id"], row["key"], row["trial_id"],
                    "leased", new_state, row["worker_id"], detail,
                )
                self._bump_usage(
                    row["campaign_id"],
                    requeues=1,
                    **({"quarantined": 1} if exhausted else {}),
                )
                moved += 1
        return moved

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(
        self,
        worker_id: str,
        campaign_id: str,
        key: str,
        report: Mapping[str, Any],
    ) -> str:
        """Record one executed trial; first write wins, duplicates no-op.

        ``report`` is an :func:`~repro.campaign.executor.execute_trial`
        report.  Returns the job's resulting state: ``done``,
        ``failed``, ``pending`` (transient failure requeued) — or
        ``ignored`` if the job was already terminal, in which case
        nothing is written anywhere (the exactly-once guarantee).
        """
        now = self.clock()
        with self._tx():
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE campaign_id = ? AND key = ?",
                (campaign_id, key),
            ).fetchone()
            if row is None:
                raise UnknownCampaignError(
                    f"no job {key!r} in campaign {campaign_id!r}"
                )
            if row["state"] in _TERMINAL_STATES:
                return "ignored"
            outcome = str(report.get("outcome", "failed"))
            retryable = bool(report.get("retryable", False))
            error = report.get("error")
            stored = {
                "schema": 1,
                "campaign": campaign_id,
                "trial_id": row["trial_id"],
                "key": key,
                "params": json.loads(row["params_json"]),
                "outcome": outcome,
                "metrics": report.get("metrics"),
                "error": error,
                "attempts": int(row["attempts"]),
                "wall_time_s": float(report.get("wall_time_s", 0.0)),
                "worker_id": worker_id,
            }
            if outcome == "completed":
                new_state = "done"
            elif retryable and row["requeues"] < self.requeue_budget:
                new_state = "pending"
            else:
                new_state = "failed"
            self._conn.execute(
                "UPDATE jobs SET state = ?, worker_id = ?,"
                " lease_expires_at = NULL,"
                " requeues = requeues + (? = 'pending'),"
                " result_json = CASE WHEN ? = 'pending' THEN NULL ELSE ? END,"
                " error = ?, updated_at = ?"
                " WHERE campaign_id = ? AND key = ?",
                (
                    new_state,
                    None if new_state == "pending" else worker_id,
                    new_state,
                    new_state,
                    json.dumps(stored, sort_keys=True),
                    None if outcome == "completed" else str(error or ""),
                    now,
                    campaign_id,
                    key,
                ),
            )
            self._log_transition(
                campaign_id, key, row["trial_id"], row["state"], new_state,
                worker_id, None if outcome == "completed" else str(error or ""),
            )
            self._bump_usage(
                campaign_id,
                trials_executed=1,
                cpu_seconds=float(report.get("wall_time_s", 0.0)),
                **(
                    {"trials_completed": 1}
                    if new_state == "done"
                    else {"requeues": 1}
                    if new_state == "pending"
                    else {"trials_failed": 1}
                ),
            )
        # Persist outside the queue transaction: the store write is
        # atomic on its own (temp file + rename) and idempotent, and a
        # crash between COMMIT and save() at worst loses a cache entry,
        # never creates a duplicate or an inconsistent one.
        if outcome == "completed":
            self.store.append_log(campaign_id, stored)
            self.store.save(campaign_id, key, stored)
        elif new_state == "failed":
            self.store.append_log(campaign_id, stored)
        return new_state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _campaign_row(self, campaign_id: str) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM campaigns WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise UnknownCampaignError(f"unknown campaign {campaign_id!r}")
        return row

    def spec_for(self, campaign_id: str) -> CampaignSpec:
        """The spec a campaign was submitted with."""
        row = self._campaign_row(campaign_id)
        return CampaignSpec.from_dict(json.loads(row["spec_json"]))

    def campaign_status(self, campaign_id: str) -> dict[str, Any]:
        """Queue-side status: per-state job counts and liveness."""
        row = self._campaign_row(campaign_id)
        counts = {
            state: 0
            for state in ("pending", "leased", "done", "failed", "quarantined")
        }
        for state_row in self._conn.execute(
            "SELECT state, COUNT(*) AS n FROM jobs"
            " WHERE campaign_id = ? GROUP BY state",
            (campaign_id,),
        ):
            counts[state_row["state"]] = state_row["n"]
        remaining = counts["pending"] + counts["leased"]
        return {
            "campaign": campaign_id,
            "state": row["state"],
            "submitted_at": row["submitted_at"],
            "total_trials": row["total_trials"],
            "job_counts": counts,
            "finished": row["state"] == "cancelled" or remaining == 0,
        }

    def list_campaigns(self) -> list[dict[str, Any]]:
        """Status of every campaign, oldest submission first."""
        names = [
            row["campaign_id"]
            for row in self._conn.execute(
                "SELECT campaign_id FROM campaigns ORDER BY submitted_at"
            )
        ]
        return [self.campaign_status(name) for name in names]

    def cancel(self, campaign_id: str) -> dict[str, Any]:
        """Stop leasing a campaign's jobs; running leases finish or expire."""
        self._campaign_row(campaign_id)
        with self._tx():
            self._conn.execute(
                "UPDATE campaigns SET state = 'cancelled' WHERE campaign_id = ?",
                (campaign_id,),
            )
        return self.campaign_status(campaign_id)

    def events_since(
        self, campaign_id: str, after_seq: int = 0, *, limit: int = 1000
    ) -> list[dict[str, Any]]:
        """Append-only transition records with ``seq > after_seq``."""
        self._campaign_row(campaign_id)
        rows = self._conn.execute(
            "SELECT * FROM transitions WHERE campaign_id = ? AND seq > ?"
            " ORDER BY seq LIMIT ?",
            (campaign_id, after_seq, limit),
        ).fetchall()
        return [dict(row) for row in rows]

    def usage(self, campaign_id: str) -> dict[str, Any]:
        """The campaign's compute-accounting ledger."""
        self._campaign_row(campaign_id)
        row = self._conn.execute(
            "SELECT * FROM usage WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return dict(row)

    def results(self, campaign_id: str) -> list[dict[str, Any]]:
        """Final per-trial records (terminal jobs only), by trial id."""
        self._campaign_row(campaign_id)
        rows = self._conn.execute(
            "SELECT trial_id, key, state, cached, requeues, attempts,"
            " result_json, error FROM jobs"
            " WHERE campaign_id = ? ORDER BY trial_id",
            (campaign_id,),
        ).fetchall()
        records = []
        for row in rows:
            if row["state"] not in _TERMINAL_STATES:
                continue
            record: dict[str, Any] = (
                json.loads(row["result_json"]) if row["result_json"] else {}
            )
            record.setdefault("trial_id", row["trial_id"])
            record.setdefault("key", row["key"])
            record.setdefault(
                "outcome", "completed" if row["state"] == "done" else "failed"
            )
            record.setdefault("error", row["error"])
            record.setdefault("attempts", row["attempts"])
            record["cached"] = bool(row["cached"])
            record["state"] = row["state"]
            record["requeues"] = row["requeues"]
            records.append(record)
        return records

    def sweep_idle(self) -> dict[str, Any]:
        """Queue-wide health snapshot (used by ``GET /healthz``)."""
        self.requeue_expired()
        totals = {
            row["state"]: row["n"]
            for row in self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            )
        }
        return {"job_counts": totals, "campaigns": len(self.list_campaigns())}
