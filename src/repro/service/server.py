"""Thin stdlib HTTP control plane for the campaign service.

The server is deliberately boring: a :class:`ThreadingHTTPServer` whose
handler opens a fresh :class:`~repro.service.queue.JobQueue` connection
per request (SQLite connections are cheap and single-threaded), speaks
JSON, and never executes trials itself — workers do that, directly
against the shared queue database.  The API surface::

    GET  /healthz                      liveness + queue-wide job counts
    POST /v1/campaigns                 submit {"spec": {...}, "timeout_s"?}
    GET  /v1/campaigns                 status of every campaign
    GET  /v1/campaigns/<name>          queue + store status and usage
    GET  /v1/campaigns/<name>/events   NDJSON transition stream (?since=N)
    POST /v1/campaigns/<name>/cancel   stop leasing the campaign's jobs
    GET  /v1/campaigns/<name>/results  final per-trial records
    GET  /v1/campaigns/<name>/usage    compute-accounting ledger

The status endpoint embeds the same
:func:`repro.campaign.status.status_summary` document that
``repro campaign status --json`` prints, so every surface reports
campaign state in one shape.

The control plane is unauthenticated and trusts its callers with
arbitrary ``module:function`` trial references — bind it to loopback or
a private network, exactly like the single-machine runner it replaces.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.campaign.spec import CampaignSpec
from repro.campaign.status import status_summary
from repro.campaign.store import CampaignStore
from repro.service.queue import (
    JobQueue,
    SpecConflictError,
    UnknownCampaignError,
)

__all__ = ["CampaignServiceServer", "serve_forever"]

#: Seconds between transition polls while streaming events.
_EVENT_POLL_S = 0.2


class CampaignServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one service data directory."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        db_path: str | Path,
        store_root: str | Path,
    ) -> None:
        super().__init__(address, _Handler)
        self.db_path = Path(db_path)
        self.store_root = Path(store_root)
        # Create the schema (and surface data-dir problems) at startup,
        # not on the first unlucky request.
        self.open_queue().close()

    def open_queue(self) -> JobQueue:
        """A fresh queue connection for one request/thread."""
        return JobQueue(self.db_path, CampaignStore(self.store_root))

    @property
    def url(self) -> str:
        """The server's base URL (host:port as actually bound)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: CampaignServiceServer

    # HTTP/1.0: close-delimited bodies make NDJSON streaming trivial for
    # stdlib clients; the control plane doesn't need keep-alive.
    protocol_version = "HTTP/1.0"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # request logging is the deployment's concern, not stderr's

    def _send_json(self, payload: Any, code: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json({"error": message}, code)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body is empty; expected JSON")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._route("POST")

    def _route(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        queue = self.server.open_queue()
        try:
            self._dispatch(method, parts, query, queue)
        except UnknownCampaignError as exc:
            self._send_error_json(404, str(exc.args[0] if exc.args else exc))
        except SpecConflictError as exc:
            self._send_error_json(409, str(exc))
        except ValueError as exc:
            self._send_error_json(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer
        finally:
            queue.close()

    def _dispatch(
        self,
        method: str,
        parts: list[str],
        query: dict[str, list[str]],
        queue: JobQueue,
    ) -> None:
        if method == "GET" and parts == ["healthz"]:
            self._send_json({"ok": True, **queue.sweep_idle()})
            return
        if len(parts) < 2 or parts[0] != "v1" or parts[1] != "campaigns":
            self._send_error_json(404, f"no route for {method} {self.path}")
            return
        tail = parts[2:]
        if method == "POST" and not tail:
            self._submit(queue)
            return
        if method == "GET" and not tail:
            self._send_json({"campaigns": queue.list_campaigns()})
            return
        if not tail:
            self._send_error_json(405, f"{method} not allowed here")
            return
        name = tail[0]
        action = tail[1] if len(tail) > 1 else None
        if method == "GET" and action is None:
            self._status(queue, name)
        elif method == "GET" and action == "events":
            self._stream_events(queue, name, query)
        elif method == "GET" and action == "results":
            self._send_json({"records": queue.results(name)})
        elif method == "GET" and action == "usage":
            self._send_json(queue.usage(name))
        elif method == "POST" and action == "cancel":
            self._send_json(queue.cancel(name))
        else:
            self._send_error_json(
                404, f"no route for {method} {self.path}"
            )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _submit(self, queue: JobQueue) -> None:
        payload = self._read_json_body()
        if not isinstance(payload, dict) or "spec" not in payload:
            raise ValueError('expected a JSON object with a "spec" field')
        spec = CampaignSpec.from_dict(payload["spec"])
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            timeout_s = float(timeout_s)
        status = queue.submit(spec, timeout_s=timeout_s)
        self._send_json(status, 201)

    def _status(self, queue: JobQueue, name: str) -> None:
        status = queue.campaign_status(name)
        store = CampaignStore(self.server.store_root)
        status["usage"] = queue.usage(name)
        # The shared serializer: identical to `repro campaign status --json`
        # run against the service's store directory.
        status["store_status"] = status_summary(store, name)
        self._send_json(status)

    def _stream_events(
        self, queue: JobQueue, name: str, query: dict[str, list[str]]
    ) -> None:
        after_seq = int(query.get("since", ["0"])[0])
        follow = query.get("follow", ["1"])[0] not in ("0", "false")
        queue.campaign_status(name)  # 404 before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        while True:
            events = queue.events_since(name, after_seq, limit=500)
            for event in events:
                line = json.dumps(event, sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                after_seq = event["seq"]
            self.wfile.flush()
            if not follow:
                break
            if not events:
                queue.requeue_expired()
                if queue.campaign_status(name)["finished"]:
                    break
                time.sleep(_EVENT_POLL_S)


def serve_forever(
    host: str,
    port: int,
    db_path: str | Path,
    store_root: str | Path,
    *,
    ready: threading.Event | None = None,
) -> CampaignServiceServer:
    """Run the control plane until interrupted (or from a thread in tests).

    ``ready`` is set once the socket is bound and the queue schema
    exists — tests and supervisors can wait on it instead of polling.
    """
    server = CampaignServiceServer((host, port), db_path, store_root)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return server
