"""Synthetic trial kernels for service tests and benchmarks.

Service tests and ``bench_service.py`` need trial kernels that are
importable by worker *processes* (dotted references), deterministic,
and cheap — and whose cost is an explicit parameter rather than real
simulation work, so queue/lease overhead can be measured in isolation.
These live in the library (not under ``tests/``) because deployed
workers import them by reference from any working directory.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.campaign.spec import CampaignSpec, parameter_grid

__all__ = ["sleep_spec", "sleep_trial", "spin_trial"]


def sleep_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Block for ``sleep_s`` seconds; models an I/O-bound trial."""
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s > 0.0:
        time.sleep(sleep_s)
    return {"slept_s": sleep_s, "index": params["index"]}


def spin_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """Deterministic integer arithmetic for ``spins`` rounds (CPU-bound)."""
    total = 0
    for value in range(int(params.get("spins", 1000))):
        total = (total + value * value) % 1_000_003
    return {"checksum": total, "index": params["index"]}


def sleep_spec(
    count: int, sleep_s: float, *, name: str = "svc-sleep", version: int = 1
) -> CampaignSpec:
    """A ``count``-trial campaign of fixed-cost sleeping trials."""
    return CampaignSpec(
        name=name,
        trial="repro.service.testing:sleep_trial",
        grid=parameter_grid(index=tuple(range(count)), sleep_s=(sleep_s,)),
        version=version,
        description=f"{count} synthetic {sleep_s:.3f}s trials",
    )
