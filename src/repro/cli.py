"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library's main entry points so a downstream user
can see the system work before writing any code:

* ``quickstart`` — one attack campaign with the full detector suite
  (``--twin`` adds the streaming digital-twin detector);
* ``scenarios`` — list/show/run the declarative scenario registry;
* ``testbed`` — the bench campaign and the headline-claim verdict;
* ``superposition`` — the Section II phase sweep as a table;
* ``params`` — the default simulation parameter table;
* ``campaign`` — the experiment-campaign runner (see ``docs/campaigns.md``);
* ``service`` — the distributed campaign service: HTTP control plane
  plus leasing worker fleets (see ``docs/campaigns.md``);
* ``lint`` — the reprolint static-analysis gate (see ``docs/reprolint.md``).
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.campaign.cli import configure_parser as configure_campaign_parser
from repro.lint.cli import configure_parser as configure_lint_parser
from repro.service.cli import configure_parser as configure_service_parser

__all__ = ["build_parser", "main"]


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from repro import ScenarioConfig
    from repro.analysis.metrics import attack_metrics
    from repro.sim.runner import run_attack

    cfg = ScenarioConfig(
        node_count=args.nodes, key_count=args.key_nodes, horizon_days=args.days
    )
    metrics = attack_metrics(run_attack(cfg, args.seed, twin=args.twin))
    print(
        f"exhausted {metrics.exhausted_key_count}/{metrics.key_count} key nodes "
        f"({metrics.exhausted_key_ratio:.0%}) over {args.days:.0f} days"
    )
    print(f"spoofed services: {metrics.spoof_services}; "
          f"genuine cover services: {metrics.genuine_services}")
    if metrics.detected:
        print(f"DETECTED at t = {metrics.detection_time_s / 3600:.1f} h")
    else:
        print("detected: no")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import all_specs, get_scenario

    if args.scenarios_command == "list":
        specs = all_specs()
        if args.json:
            print(json.dumps([s.to_dict() for s in specs], indent=2))
            return 0
        width = max(len(s.name) for s in specs)
        for spec in specs:
            tags = f"  [{', '.join(spec.tags)}]" if spec.tags else ""
            print(f"{spec.name:<{width}}  {spec.description}{tags}")
        return 0

    spec = get_scenario(args.name)
    if args.scenarios_command == "show":
        print(json.dumps(spec.to_dict(), indent=2))
        return 0

    # scenarios run
    from repro.scenarios import scenario_trial

    params: dict[str, object] = {"scenario": args.name, "seed": args.seed}
    if args.nodes is not None:
        params["node_count"] = args.nodes
    if args.key_nodes is not None:
        params["key_count"] = args.key_nodes
    if args.days is not None:
        params["horizon_days"] = args.days
    out = scenario_trial(params)
    print(json.dumps(out, indent=2))
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.testbed import run_testbed

    summary = run_testbed(trial_count=args.trials)
    for trial in summary.trials:
        print(
            f"trial {trial.seed:>2}: {trial.exhausted_key_count}/"
            f"{trial.key_count} exhausted, "
            f"{'DETECTED' if trial.detected else 'undetected'}"
        )
    print(f"mean exhausted ratio: {summary.mean_exhausted_ratio:.0%}; "
          f"detections: {summary.detection_count}/{args.trials}")
    print("headline claim: "
          + ("HOLDS" if summary.headline_claim_holds else "FAILS"))
    return 0 if summary.headline_claim_holds else 1


def _cmd_superposition(args: argparse.Namespace) -> int:
    from repro.em.superposition import fit_two_wave_model, superposition_sweep

    offsets = [i * 2.0 * math.pi / (args.points - 1) for i in range(args.points)]
    sweep = superposition_sweep(offsets, wave_power_w=args.power_mw * 1e-3)
    print(f"{'phase/pi':>9} {'coherent_mW':>12} {'harvested_mW':>13}")
    for dphi, rf, dc in zip(offsets, sweep["rf_power"], sweep["harvested"]):
        print(f"{dphi / math.pi:>9.2f} {rf * 1e3:>12.3f} {dc * 1e3:>13.3f}")
    fit = fit_two_wave_model(sweep["phase_offsets"], sweep["rf_power"])
    print(f"fit: {fit.p_sum * 1e3:.3f} + {fit.p_cross * 1e3:.3f} cos(dphi) mW, "
          f"r^2 = {fit.r_squared:.4f}")
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table
    from repro.sim.scenario import ScenarioConfig

    print(
        format_table(
            ["parameter", "value"],
            list(ScenarioConfig().parameter_rows()),
            title="Default simulation parameters",
        )
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.cli import run_campaign_command

    return run_campaign_command(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_service(args: argparse.Namespace) -> int:
    from repro.service.cli import run_service_command

    return run_service_command(args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Are You Really Charging Me?' (ICDCS 2022): "
            "the Charging Spoofing Attack on WRSNs."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="run one attack campaign")
    quick.add_argument("--nodes", type=int, default=100)
    quick.add_argument("--key-nodes", type=int, default=10)
    quick.add_argument("--days", type=float, default=42.0)
    quick.add_argument("--seed", type=int, default=1)
    quick.add_argument(
        "--twin",
        action="store_true",
        help="deploy the streaming digital-twin detector alongside the suite",
    )
    quick.set_defaults(func=_cmd_quickstart)

    scenarios = sub.add_parser(
        "scenarios", help="list/show/run the declarative scenario registry"
    )
    scen_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scen_list = scen_sub.add_parser("list", help="list registered scenarios")
    scen_list.add_argument("--json", action="store_true")
    scen_list.set_defaults(func=_cmd_scenarios)
    scen_show = scen_sub.add_parser("show", help="show one scenario as JSON")
    scen_show.add_argument("name")
    scen_show.set_defaults(func=_cmd_scenarios)
    scen_run = scen_sub.add_parser("run", help="run one scenario trial")
    scen_run.add_argument("name")
    scen_run.add_argument("--seed", type=int, default=1)
    scen_run.add_argument("--nodes", type=int, default=None)
    scen_run.add_argument("--key-nodes", type=int, default=None)
    scen_run.add_argument("--days", type=float, default=None)
    scen_run.set_defaults(func=_cmd_scenarios)

    bench = sub.add_parser("testbed", help="run the bench campaign")
    bench.add_argument("--trials", type=int, default=20)
    bench.set_defaults(func=_cmd_testbed)

    sweep = sub.add_parser("superposition", help="print the phase sweep")
    sweep.add_argument("--points", type=int, default=25)
    sweep.add_argument("--power-mw", type=float, default=10.0)
    sweep.set_defaults(func=_cmd_superposition)

    params = sub.add_parser("params", help="print the parameter table")
    params.set_defaults(func=_cmd_params)

    campaign = sub.add_parser(
        "campaign", help="run/inspect cached experiment campaigns"
    )
    configure_campaign_parser(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    lint = sub.add_parser(
        "lint", help="run the reprolint static-analysis rules"
    )
    configure_lint_parser(lint)
    lint.set_defaults(func=_cmd_lint)

    service = sub.add_parser(
        "service", help="distributed campaign service (server/workers)"
    )
    configure_service_parser(service)
    service.set_defaults(func=_cmd_service)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
