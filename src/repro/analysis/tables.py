"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows/series the paper's tables and figures
report; this module renders them legibly on a terminal without any
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "series_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one x column, one column per series."""
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    headers = [x_name] + list(series.keys())
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
