"""Outcome metrics computed from simulation results.

Every number a benchmark table reports is computed here, from the trace
and final network state alone, so the same definitions apply to every
controller and experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc.charger import ChargeMode
from repro.sim.events import NodeDied, RoutingRecomputed
from repro.sim.wrsn_sim import SimulationResult

__all__ = [
    "AttackMetrics",
    "LifetimeMetrics",
    "attack_metrics",
    "lifetime_metrics",
    "network_lifetime_s",
]


@dataclass(frozen=True)
class AttackMetrics:
    """Attack-side outcome of one run.

    Attributes
    ----------
    exhausted_key_ratio:
        Fraction of the initially annotated key nodes dead at the end —
        the paper's headline metric.
    attack_utility:
        Total criticality weight of the exhausted key nodes.
    spoof_services, genuine_services:
        Service counts by mode.
    detected:
        Whether any detector fired.
    detection_time_s:
        First alarm time (``None`` if undetected).
    mc_energy_spent_j:
        Charger energy consumed (travel + emission) over the run,
        counting depot refills.
    stranded_nodes:
        Alive nodes without a base-station route at the end.
    """

    exhausted_key_ratio: float
    exhausted_key_count: int
    key_count: int
    attack_utility: float
    spoof_services: int
    genuine_services: int
    detected: bool
    detection_time_s: float | None
    mc_energy_spent_j: float
    stranded_nodes: int


def attack_metrics(result: SimulationResult) -> AttackMetrics:
    """Summarise one run from the attacker's scoreboard."""
    network = result.network
    exhausted = result.exhausted_key_ids()
    utility = sum(network.nodes[node_id].weight for node_id in exhausted)
    services = result.trace.services()
    spoof = sum(
        1
        for s in services
        if s.mode in (ChargeMode.SPOOF, ChargeMode.PRETEND)
    )
    genuine = sum(1 for s in services if s.mode == ChargeMode.GENUINE)

    # Every depot refill restores a full battery, so a charger's total
    # consumption is initial charge + refills - what is left; sum over
    # the fleet (single-charger runs have exactly one).
    from repro.sim.events import DepotRecharged

    refills_by_unit: dict[int, int] = {}
    for event in result.trace.of_type(DepotRecharged):
        refills_by_unit[event.charger_index] = (
            refills_by_unit.get(event.charger_index, 0) + 1
        )
    spent = sum(
        mc.battery_capacity_j * (1 + refills_by_unit.get(unit, 0)) - mc.energy_j
        for unit, mc in enumerate(result.chargers)
    )

    return AttackMetrics(
        exhausted_key_ratio=result.exhausted_key_ratio(),
        exhausted_key_count=len(exhausted),
        key_count=len(result.initial_key_ids),
        attack_utility=utility,
        spoof_services=spoof,
        genuine_services=genuine,
        detected=result.detected,
        detection_time_s=result.trace.first_detection_time(),
        mc_energy_spent_j=spent,
        stranded_nodes=len(network.stranded_ids()),
    )


@dataclass(frozen=True)
class LifetimeMetrics:
    """Network-health outcome of one run.

    Attributes
    ----------
    first_death_s:
        Time of the first node death (``None`` if none died) — the
        strictest classical definition of network lifetime.
    first_key_death_s:
        Time of the first *key node* death.
    first_partition_s:
        First time any alive node lost its base-station route.
    dead_count:
        Nodes dead at the end of the run.
    alive_connected_ratio:
        Fraction of all nodes alive *and* connected at the end.
    coverage_ratio:
        Fraction of the field still observed by alive, connected
        sensors at the end (see :mod:`repro.network.coverage`).
    """

    first_death_s: float | None
    first_key_death_s: float | None
    first_partition_s: float | None
    dead_count: int
    alive_connected_ratio: float
    coverage_ratio: float


def network_lifetime_s(result: SimulationResult) -> float:
    """Network lifetime: time of first death, or the horizon if none."""
    deaths = result.trace.deaths()
    return deaths[0].time if deaths else result.horizon_s


def lifetime_metrics(result: SimulationResult) -> LifetimeMetrics:
    """Summarise one run from the network's point of view."""
    deaths = result.trace.deaths()
    first_death = deaths[0].time if deaths else None
    key_deaths = [d for d in deaths if d.is_key]
    first_key_death = key_deaths[0].time if key_deaths else None

    first_partition = None
    for event in result.trace.of_type(RoutingRecomputed):
        if event.stranded_count > 0:
            first_partition = event.time
            break
    # A death that directly strands nodes also counts.
    for event in result.trace.of_type(NodeDied):
        if event.stranded_count > 0:
            if first_partition is None or event.time < first_partition:
                first_partition = event.time
            break

    network = result.network
    total = len(network.nodes)
    connected = sum(
        1
        for node_id in network.alive_ids()
        if network.routing_tree.is_connected(node_id)
    )
    from repro.network.coverage import coverage_ratio

    return LifetimeMetrics(
        first_death_s=first_death,
        first_key_death_s=first_key_death,
        first_partition_s=first_partition,
        dead_count=len(network.dead_ids()),
        alive_connected_ratio=connected / total if total else 0.0,
        coverage_ratio=coverage_ratio(network),
    )
