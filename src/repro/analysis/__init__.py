"""Metrics, aggregation and table rendering for experiments."""

from repro.analysis.aggregate import SeriesStats, aggregate, mean_ci
from repro.analysis.metrics import (
    AttackMetrics,
    attack_metrics,
    lifetime_metrics,
    network_lifetime_s,
)
from repro.analysis.tables import format_table, series_table

__all__ = [
    "AttackMetrics",
    "SeriesStats",
    "aggregate",
    "attack_metrics",
    "format_table",
    "lifetime_metrics",
    "mean_ci",
    "network_lifetime_s",
    "series_table",
]
