"""Multi-seed aggregation: means and confidence intervals.

Experiments repeat every configuration across seeds; the tables report
mean ± half-width of a Student-t confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats

__all__ = ["SeriesStats", "aggregate", "mean_ci"]


@dataclass(frozen=True)
class SeriesStats:
    """Summary of one metric across repeated trials."""

    mean: float
    ci_half_width: float
    std: float
    n: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci_half_width:.3f} (n={self.n})"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> SeriesStats:
    """Mean with a Student-t confidence interval.

    A single observation yields a zero-width interval (there is no
    variance estimate to widen it with).  Non-finite observations (NaN
    or ±inf) are rejected: they would silently poison the mean.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot aggregate an empty series")
    if not np.isfinite(arr).all():
        raise ValueError("cannot aggregate non-finite values (NaN or inf)")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return SeriesStats(mean, 0.0, 0.0, 1, mean, mean)
    std = float(arr.std(ddof=1))
    sem = std / np.sqrt(arr.size)
    t_crit = float(stats.t.ppf((1.0 + confidence) / 2.0, df=arr.size - 1))
    return SeriesStats(
        mean=mean,
        ci_half_width=float(t_crit * sem),
        std=std,
        n=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def aggregate(
    rows: Iterable[dict[str, float]], keys: Sequence[str]
) -> dict[str, SeriesStats]:
    """Aggregate the named numeric fields across a batch of row dicts."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to aggregate")
    return {key: mean_ci([row[key] for row in rows]) for key in keys}
