"""The named scenario registry.

One flat namespace of :class:`~repro.scenarios.spec.ScenarioSpec` objects,
so every entry point — CLI, campaigns, benchmarks, tests — resolves a
scenario the same way: by name.  Built-in scenarios cover the attack
surface the paper and its extensions study:

* ``benign`` — honest charger, the false-positive reference.
* ``csa-baseline`` — the paper's charging-spoofing attack.
* ``csa-intermittent`` — partial/intermittent spoofing (each planned
  spoof flips a biased coin; misses are served genuinely).
* ``command-spoof`` — control-channel RemoteStop forgery: legitimate
  sessions truncated early but logged in full (OCPP-style).
* ``*-on-demand`` variants — the same attacks under probabilistic
  (exponential) request arrivals instead of deterministic
  threshold-crossing requests, derived by composition.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "all_specs",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (rejecting silent shadowing)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(
            f"scenario {spec.name!r} is already registered; "
            "pass replace=True to override it deliberately"
        )
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario (mainly for tests registering temporary specs)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name, with a helpful error on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def all_specs() -> list[ScenarioSpec]:
    """Every registered spec, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------

BENIGN = register_scenario(
    ScenarioSpec(
        name="benign",
        description="Honest charger; the false-positive-rate reference run.",
        controller="benign",
        tags=("reference",),
    )
)

CSA_BASELINE = register_scenario(
    ScenarioSpec(
        name="csa-baseline",
        description="The paper's charging-spoofing attack (always spoofs).",
        controller="csa",
        tags=("attack", "csa"),
    )
)

CSA_INTERMITTENT = register_scenario(
    CSA_BASELINE.derive(
        name="csa-intermittent",
        description=(
            "Partial spoofing: each planned spoof lands with probability "
            "0.6, otherwise the victim is genuinely charged."
        ),
        controller_params={"spoof_probability": 0.6},
        tags=("attack", "csa", "stealth"),
    )
)

COMMAND_SPOOF = register_scenario(
    ScenarioSpec(
        name="command-spoof",
        description=(
            "Control-channel RemoteStop forgery: key-node sessions stopped "
            "at 80% but logged in full (OCPP-style denial of charge)."
        ),
        controller="command-spoof",
        controller_params={"stop_fraction": 0.8},
        tags=("attack", "control-channel"),
    )
)

#: Probabilistic on-demand arrivals: nodes wait an exponential extra
#: delay after crossing the request threshold before asking for service.
_ON_DEMAND = {"request_delay_mean_s": 1800.0}

BENIGN_ON_DEMAND = register_scenario(
    BENIGN.derive(
        name="benign-on-demand",
        description="Honest charger under probabilistic request arrivals.",
        config_overrides=_ON_DEMAND,
        tags=("reference", "on-demand"),
    )
)

CSA_ON_DEMAND = register_scenario(
    CSA_BASELINE.derive(
        name="csa-on-demand",
        description="CSA under probabilistic (exponential) request arrivals.",
        config_overrides=_ON_DEMAND,
        tags=("attack", "csa", "on-demand"),
    )
)

COMMAND_SPOOF_ON_DEMAND = register_scenario(
    COMMAND_SPOOF.derive(
        name="command-spoof-on-demand",
        description=(
            "RemoteStop forgery under probabilistic request arrivals."
        ),
        config_overrides=_ON_DEMAND,
        tags=("attack", "control-channel", "on-demand"),
    )
)
