"""Declarative scenario specifications.

A :class:`ScenarioSpec` is pure data describing one attack×defence
set-up: which controller drives the charger (by catalogue name, with
parameters), which knobs of the shared :class:`~repro.sim.scenario.ScenarioConfig`
it overrides, and which defences are deployed.  Specs are frozen and
JSON-able, so the same object backs the CLI catalogue, campaign grids and
the streaming-detection benchmark.

Composition is by derivation: :meth:`ScenarioSpec.derive` produces a new
spec with overrides *merged* over the parent's — e.g. the
probabilistic-arrivals pack is each base scenario with one extra config
override, not a hand-copied variant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields, replace
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.sim.scenario import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.actions import MissionController

__all__ = ["CONTROLLER_CATALOGUE", "ScenarioSpec", "build_controller"]

_NAME_PATTERN = re.compile(r"[a-z0-9][a-z0-9\-]*")

_CONFIG_FIELDS = frozenset(f.name for f in fields(ScenarioConfig))


def _make_benign(key_count: int, seed: int, params: Mapping[str, Any]) -> Any:
    from repro.sim.benign import BenignController

    return BenignController(**params)


def _make_csa(key_count: int, seed: int, params: Mapping[str, Any]) -> Any:
    from repro.attack.attacker import CsaAttacker

    return CsaAttacker(key_count=key_count, seed=seed, **params)


def _make_blatant(key_count: int, seed: int, params: Mapping[str, Any]) -> Any:
    from repro.attack.attacker import BlatantAttacker

    return BlatantAttacker(key_count=key_count, **params)


def _make_command_spoof(key_count: int, seed: int, params: Mapping[str, Any]) -> Any:
    from repro.attack.command_spoof import CommandSpoofAttacker

    return CommandSpoofAttacker(key_count=key_count, **params)


#: Controller factories by catalogue name.  Each factory receives the
#: resolved config's ``key_count``, the trial seed, and the spec's
#: ``attacker_params``, and returns a fresh single-use controller.
CONTROLLER_CATALOGUE: dict[
    str, Callable[[int, int, Mapping[str, Any]], "MissionController"]
] = {
    "benign": _make_benign,
    "csa": _make_csa,
    "blatant": _make_blatant,
    "command-spoof": _make_command_spoof,
}


def build_controller(
    name: str, key_count: int, seed: int, params: Mapping[str, Any] | None = None
) -> "MissionController":
    """A fresh controller from the catalogue (clear error on a typo)."""
    try:
        factory = CONTROLLER_CATALOGUE[name]
    except KeyError:
        known = ", ".join(sorted(CONTROLLER_CATALOGUE))
        raise ValueError(
            f"unknown controller {name!r}; catalogue: {known}"
        ) from None
    return factory(key_count, seed, dict(params or {}))


@dataclass(frozen=True)
class ScenarioSpec:
    """One named attack×defence scenario, as pure data.

    Parameters
    ----------
    name:
        Registry key (lower-case, digits, dashes).
    description:
        One-line human summary (shown by ``repro scenarios list``).
    controller:
        Catalogue name of the mission controller
        (:data:`CONTROLLER_CATALOGUE`).
    controller_params:
        Keyword arguments for the controller factory (JSON-able).
    config_overrides:
        :class:`~repro.sim.scenario.ScenarioConfig` fields this scenario
        pins; unknown field names are rejected at construction.
    detectors:
        Deploy the periodic base-station detector suite.
    twin:
        Deploy the streaming :class:`~repro.twin.detector.TwinDetector`.
    audit_interval_s:
        Optional voltage-audit intensity override.
    tags:
        Free-form labels (``repro scenarios list`` groups by them).
    """

    name: str
    description: str
    controller: str = "csa"
    controller_params: Mapping[str, Any] = field(default_factory=dict)
    config_overrides: Mapping[str, Any] = field(default_factory=dict)
    detectors: bool = True
    twin: bool = True
    audit_interval_s: float | None = None
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_PATTERN.fullmatch(self.name):
            raise ValueError(
                f"scenario name must match {_NAME_PATTERN.pattern!r}, "
                f"got {self.name!r}"
            )
        if self.controller not in CONTROLLER_CATALOGUE:
            known = ", ".join(sorted(CONTROLLER_CATALOGUE))
            raise ValueError(
                f"scenario {self.name!r}: unknown controller "
                f"{self.controller!r}; catalogue: {known}"
            )
        unknown = set(self.config_overrides) - _CONFIG_FIELDS
        if unknown:
            raise ValueError(
                f"scenario {self.name!r}: unknown ScenarioConfig field(s) "
                f"{sorted(unknown)}; valid fields: {sorted(_CONFIG_FIELDS)}"
            )
        # Freeze the mappings so a registered spec cannot drift.
        object.__setattr__(
            self, "controller_params", MappingProxyType(dict(self.controller_params))
        )
        object.__setattr__(
            self, "config_overrides", MappingProxyType(dict(self.config_overrides))
        )
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def derive(self, name: str, description: str, **changes: Any) -> "ScenarioSpec":
        """A new spec composed over this one.

        ``controller_params`` and ``config_overrides`` passed here are
        *merged* over the parent's (key-wise); every other field given
        replaces the parent's value outright.
        """
        merged: dict[str, Any] = dict(changes)
        if "controller_params" in merged:
            merged["controller_params"] = {
                **self.controller_params,
                **dict(merged["controller_params"]),
            }
        if "config_overrides" in merged:
            merged["config_overrides"] = {
                **self.config_overrides,
                **dict(merged["config_overrides"]),
            }
        return replace(self, name=name, description=description, **merged)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_config(self, base: ScenarioConfig | None = None) -> ScenarioConfig:
        """The concrete :class:`ScenarioConfig` this scenario runs under."""
        base = base if base is not None else ScenarioConfig()
        if not self.config_overrides:
            return base
        return base.with_(**dict(self.config_overrides))

    def build_controller(self, cfg: ScenarioConfig, seed: int) -> "MissionController":
        """A fresh single-use controller for one trial."""
        return build_controller(
            self.controller, cfg.key_count, seed, self.controller_params
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able encoding (``repro scenarios show --json``)."""
        return {
            "name": self.name,
            "description": self.description,
            "controller": self.controller,
            "controller_params": dict(self.controller_params),
            "config_overrides": dict(self.config_overrides),
            "detectors": self.detectors,
            "twin": self.twin,
            "audit_interval_s": self.audit_interval_s,
            "tags": list(self.tags),
        }
