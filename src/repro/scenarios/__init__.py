"""Declarative scenario registry.

Named, composable attack×defence scenario specifications, each
resolvable to a concrete :class:`~repro.sim.scenario.ScenarioConfig` +
controller and sweepable through the campaign machinery unchanged:

* :mod:`repro.scenarios.spec` — the frozen :class:`ScenarioSpec`
  dataclass, controller catalogue, validation and composition.
* :mod:`repro.scenarios.registry` — the named registry with the built-in
  scenarios (baseline CSA, intermittent spoofing, control-channel
  command spoofing, probabilistic on-demand arrivals).
* :mod:`repro.scenarios.trials` — the campaign trial kernel
  (``repro.scenarios.trials:scenario_trial``) and the EXP-13 scenario ×
  seed campaign builder.

>>> from repro.scenarios import get_scenario
>>> spec = get_scenario("csa-baseline")
>>> cfg = spec.resolve_config()
>>> controller = spec.build_controller(cfg, seed=1)
"""

from repro.scenarios.registry import (
    all_specs,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.scenarios.spec import (
    CONTROLLER_CATALOGUE,
    ScenarioSpec,
    build_controller,
)
from repro.scenarios.trials import scenario_matrix_spec, scenario_trial

__all__ = [
    "CONTROLLER_CATALOGUE",
    "ScenarioSpec",
    "all_specs",
    "build_controller",
    "get_scenario",
    "register_scenario",
    "scenario_matrix_spec",
    "scenario_names",
    "scenario_trial",
    "unregister_scenario",
]
