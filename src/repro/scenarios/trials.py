"""The scenario-matrix trial kernel and its campaign builder.

:func:`scenario_trial` is a pure campaign trial (params dict in, JSON
metrics dict out) importable by worker processes and service runners as
``repro.scenarios.trials:scenario_trial``.  It resolves a registry
scenario by name, runs one simulation with the scenario's defences
deployed, and reports *per-detector-family first-alarm times* — the raw
material for detection-latency and TPR/FPR comparisons between the
streaming digital twin and the periodic audit suite.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.campaign.spec import CampaignSpec, parameter_grid

__all__ = ["scenario_matrix_spec", "scenario_trial"]

#: Scenario names swept by the default matrix (every built-in scenario).
DEFAULT_MATRIX = (
    "benign",
    "benign-on-demand",
    "csa-baseline",
    "csa-intermittent",
    "csa-on-demand",
    "command-spoof",
    "command-spoof-on-demand",
)


def scenario_trial(params: Mapping[str, Any]) -> dict[str, Any]:
    """One scenario run → detection-latency metrics (campaign kernel).

    ``params`` must carry ``scenario`` (a registry name) and ``seed``;
    every other key is applied as a :class:`ScenarioConfig` override on
    top of the scenario's own (so campaigns can shrink ``node_count`` /
    ``horizon_days`` for smoke scales without forking the registry).
    """
    # Imported lazily so the kernel is cheap to reference by dotted name.
    from repro.campaign.experiments import BENCH_CONFIG
    from repro.scenarios.registry import get_scenario
    from repro.sim.runner import run_attack

    params = dict(params)
    name = params.pop("scenario")
    seed = int(params.pop("seed"))
    spec = get_scenario(name)
    cfg = spec.resolve_config(BENCH_CONFIG)
    if params:
        cfg = cfg.with_(**params)

    result = run_attack(
        cfg,
        seed,
        controller=spec.build_controller(cfg, seed),
        detectors=spec.detectors,
        audit_interval_s=spec.audit_interval_s,
        twin=spec.twin,
    )

    twin_first: float | None = None
    periodic_first: float | None = None
    for det in result.detections:
        if det.detector == "twin":
            if twin_first is None:
                twin_first = det.time
        elif periodic_first is None:
            periodic_first = det.time
    return {
        "scenario": name,
        "seed": seed,
        "controller": result.controller_name,
        "horizon_s": cfg.horizon_s,
        "ended_at": result.ended_at,
        "exhausted_key_ratio": result.exhausted_key_ratio(),
        "deaths": len(result.trace.deaths()),
        "detected": result.detected,
        "twin_latency_s": twin_first,
        "periodic_latency_s": periodic_first,
        "detections": len(result.detections),
    }


def scenario_matrix_spec(
    scenarios: Sequence[str] | None = None,
    seeds: Sequence[int] = (1, 2, 3),
    **config_overrides: Any,
) -> CampaignSpec:
    """The scenario × seed sweep as a :class:`CampaignSpec`.

    Extra keyword arguments become per-trial ``ScenarioConfig``
    overrides (e.g. ``node_count=40, horizon_days=10`` for a smoke
    scale).  Scenario names are validated eagerly so a typo fails at
    spec-build time, not inside a worker process.
    """
    from repro.scenarios.registry import get_scenario

    names = tuple(scenarios) if scenarios is not None else DEFAULT_MATRIX
    for name in names:
        get_scenario(name)
    grid = parameter_grid(scenario=list(names), seed=list(seeds))
    if config_overrides:
        grid = [{**point, **config_overrides} for point in grid]
    return CampaignSpec(
        name="exp13-scenarios",
        trial="repro.scenarios.trials:scenario_trial",
        grid=grid,
        description=(
            "EXP-13: streaming digital-twin vs periodic audits across the "
            "declarative scenario matrix (detection latency + TPR/FPR)."
        ),
    )
